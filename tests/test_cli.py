"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import PERF_CONFIGS, SCHEMES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reliability_defaults(self):
        args = build_parser().parse_args(["reliability"])
        assert args.scheme == "citadel"
        assert args.trials == 20000
        assert args.tsv_fit == 0.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reliability", "--scheme", "nope"])

    def test_perf_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.benchmark == "mcf"
        assert set(args.configs) == set(PERF_CONFIGS)


class TestCommands:
    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "14.062%" in out
        assert "35874" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "BIOBENCH" in out
        assert out.count("\n") >= 39  # header + 38 benchmarks

    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for name in SCHEMES:
            assert name in out

    def test_reliability_small_run(self, capsys):
        rc = main([
            "reliability", "--scheme", "secded", "--trials", "300",
            "--seed", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "P(fail)" in out

    def test_reliability_citadel_wires_mitigations(self, capsys):
        rc = main([
            "reliability", "--scheme", "citadel", "--trials", "200",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TSV-Swap" in out and "DDS" in out

    def test_reliability_modes_flag(self, capsys):
        rc = main([
            "reliability", "--scheme", "symbol-same-bank",
            "--trials", "1500", "--modes", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "failure modes" in out

    def test_perf_small_run(self, capsys):
        rc = main([
            "perf", "--benchmark", "povray", "--requests", "200",
            "--configs", "same-bank", "3dp",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "same-bank" in out and "3dp" in out
        # Same-Bank is the normalization baseline: 1.000x.
        assert "1.000x" in out


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        from repro import __version__
        from repro.cli import package_version

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {package_version()}"
        # Metadata fallback: an uninstalled tree reports the source
        # version, an installed one reports the distribution's.
        assert package_version() == __version__ or package_version()


class TestJsonOutput:
    def test_overhead_json(self, capsys):
        import json

        assert main(["overhead", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["sram_bytes"] == 35874
        assert document["dram_fraction"] == pytest.approx(0.140625)

    def test_workloads_json(self, capsys):
        import json

        assert main(["workloads", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "mcf" in document
        assert document["mcf"]["suite"]
        assert len(document) >= 38

    def test_schemes_json(self, capsys):
        import json

        assert main(["schemes", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document) == set(SCHEMES)
        assert document["citadel"]["implies_mitigations"] is True
        assert document["secded"]["implies_mitigations"] is False


class TestObservabilityCommands:
    """e2e for the ISSUE 8 CLI surface: `repro profile`, `repro top`
    (against a live in-process service), and `repro stats --export`."""

    @pytest.fixture
    def live_service(self, tmp_path):
        import threading

        from repro.reliability.parallel import CampaignReport
        from repro.reliability.results import ReliabilityResult
        from repro.service.http import make_server
        from repro.service.scheduler import CampaignScheduler
        from repro.service.store import ResultStore

        def stub_executor(spec, workers, cancel_event):
            result = ReliabilityResult(
                scheme_name=spec.scheme,
                trials=spec.effective_trials,
                failures=1,
                lifetime_hours=61320.0,
            )
            return result, CampaignReport(planned_shards=1, merged_shards=1)

        store = ResultStore(tmp_path / "store")
        scheduler = CampaignScheduler(
            store, slots=1, retry_backoff_s=0.0, executor=stub_executor
        ).start()
        server = make_server(scheduler, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{server.port}"
        server.shutdown()
        server.server_close()
        scheduler.shutdown()
        thread.join(timeout=10.0)

    def test_profile_reports_span_hotspots(self, capsys, tmp_path):
        import json

        spans = tmp_path / "spans.folded"
        chrome = tmp_path / "trace.json"
        rc = main([
            "profile", "--scheme", "secded", "--trials", "60",
            "--seed", "3", "--shard-size", "30", "--no-sampler",
            "--spans-out", str(spans),
            "--chrome-out", str(chrome), "--json",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["trials"] == 60
        stacks = {h["stack"]: h["count"] for h in document["span_hotspots"]}
        assert stacks["campaign;shard;trial"] == 60
        assert "p_fail" in captured.err
        assert "campaign;shard;trial 60" in spans.read_text()
        assert json.loads(chrome.read_text())["traceEvents"]

    def test_top_once_renders_dashboard(self, capsys, live_service):
        rc = main(["top", "--url", live_service, "--once"])
        assert rc == 0
        err_text = capsys.readouterr().err
        assert "repro top — service ok" in err_text
        assert "jobs      queued:0" in err_text

    def test_stats_export_collapsed_and_chrome(self, capsys, tmp_path):
        import json

        from repro.telemetry.tracing import TraceWriter

        trace_path = tmp_path / "trace.jsonl"
        writer = TraceWriter(trace_path, sample_every=1)
        with writer.span("campaign"):
            with writer.span("shard-0"):
                pass
        writer.close()
        assert main([
            "stats", "--trace", str(trace_path), "--export", "collapsed",
        ]) == 0
        out = capsys.readouterr().out
        assert "campaign;shard 1" in out
        assert main([
            "stats", "--trace", str(trace_path), "--export", "chrome",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["displayTimeUnit"] == "ms"

    def test_stats_export_requires_trace(self, capsys):
        assert main(["stats", "--export", "chrome"]) == 2
        assert "--trace" in capsys.readouterr().err
