"""End-to-end telemetry guarantees.

Three contracts, tested against real campaigns rather than mocks:

1. *Metrics never change the numbers.*  A campaign with
   ``collect_metrics=True`` produces byte-identical sample data to one
   without, and the worker count changes neither the samples nor the
   merged metrics.
2. *Disabled means free.*  With telemetry off the trial loop must not
   pay for the instrumentation (guarded by a min-of-repeats timing
   comparison with a generous 5% margin).
3. *The artifacts compose.*  ``--metrics-out``/``--trace-out`` files
   feed ``repro stats`` and ``tools/bench_report.py`` and come back out
   as the per-dimension correction counts and parity-cache hit rate the
   paper figures are built from.
"""

import json
import time

import pytest

from repro.cli import main
from repro.errors import TelemetryError
from repro.faults.rates import FailureRates
from repro.core.parity3dp import make_3dp
from repro.reliability.montecarlo import EngineConfig
from repro.reliability.parallel import ParallelLifetimeRunner
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.stats import derived_stats, load_metrics_file
from tools.bench_report import build_report


def run_parallel(geometry, workers, trials=600, **cfg):
    runner = ParallelLifetimeRunner(
        geometry,
        FailureRates.paper_baseline(tsv_device_fit=100.0),
        make_3dp(geometry),
        EngineConfig(tsv_swap_standby=4, use_dds=True, **cfg),
        root_seed=42,
        workers=workers,
        shard_size=200,
    )
    return runner.run(trials=trials)


class TestMetricsNeverChangeResults:
    def test_telemetry_on_equals_telemetry_off(self, geometry):
        off = run_parallel(geometry, workers=1)
        on = run_parallel(geometry, workers=1, collect_metrics=True)
        assert off == on  # dataclass equality excludes the metrics sidecar
        assert off.metrics is None
        assert on.metrics is not None
        off_doc, on_doc = off.to_dict(), on.to_dict()
        on_doc.pop("metrics")
        assert off_doc == on_doc

    def test_workers_1_vs_4_identical_merged_metrics(self, geometry):
        a = run_parallel(geometry, workers=1, collect_metrics=True)
        b = run_parallel(geometry, workers=4, collect_metrics=True)
        assert a == b
        assert a.metrics.to_dict() == b.metrics.to_dict()
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_metrics_account_for_every_trial(self, geometry):
        result = run_parallel(geometry, workers=2, collect_metrics=True)
        assert result.metrics.counter("engine/trials") == result.trials
        assert result.metrics.counter("engine/failures") == result.failures
        hist = result.metrics.histogram("engine/faults_per_trial")
        assert hist is not None
        assert hist.count == result.trials

    def test_campaign_wallclock_metrics_stay_out_of_results(self, geometry):
        runner = ParallelLifetimeRunner(
            geometry,
            FailureRates.paper_baseline(tsv_device_fit=100.0),
            make_3dp(geometry),
            EngineConfig(collect_metrics=True),
            root_seed=7,
            workers=2,
            shard_size=100,
        )
        result = runner.run(trials=300)
        campaign = runner.last_campaign_metrics
        assert campaign.counter("campaign/shards_completed") == 3
        # Shard wall-clock lives only runner-side; the merged result
        # carries nothing volatile, so checkpoints stay deterministic.
        assert "campaign/shard_time" not in result.metrics.names()
        assert all(not n.startswith("campaign/") for n in result.metrics)


class TestDisabledOverhead:
    def test_disabled_telemetry_is_near_free(self, geometry):
        """min-of-repeats timing: the metrics=None fast path must stay
        within 5% of the instrumented-but-disabled loop's budget."""
        def best_of(repeats, **cfg):
            best = float("inf")
            for _ in range(repeats):
                started = time.monotonic()
                run_parallel(geometry, workers=1, trials=300, **cfg)
                best = min(best, time.monotonic() - started)
            return best

        best_of(1)  # warm caches before timing either variant
        disabled = best_of(3)
        enabled = best_of(3, collect_metrics=True)
        assert disabled <= enabled * 1.05, (
            f"telemetry-disabled campaign ran at {disabled:.3f}s vs "
            f"{enabled:.3f}s enabled; the disabled path must not pay "
            "for instrumentation"
        )


class TestStatsHelpers:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.inc("parity/corrected/dim1", 40)
        registry.inc("parity/corrected/dim2", 2)
        registry.inc("perf/parity_lookups", 100)
        registry.inc("perf/parity_hits", 85)
        registry.inc("engine/trials", 10)
        registry.inc("engine/failures", 1)
        registry.inc("engine/faults_sampled", 25)
        return registry

    def test_derived_stats_headlines(self):
        derived = derived_stats(self.make_registry())
        assert derived["parity_corrections_by_dimension"] == {
            "dim1": 40, "dim2": 2,
        }
        assert derived["parity_cache_hit_rate"] == pytest.approx(0.85)
        assert derived["trials"] == 10
        assert derived["failures"] == 1

    def test_load_metrics_file_accepts_all_embeddings(self, tmp_path):
        registry = self.make_registry()
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(registry.to_dict()))
        nested = tmp_path / "nested.json"
        nested.write_text(json.dumps({"metrics": registry.to_dict()}))
        result_doc = tmp_path / "result.json"
        result_doc.write_text(
            json.dumps({"result": {"metrics": registry.to_dict()}})
        )
        for path in (bare, nested, result_doc):
            assert load_metrics_file(path).to_dict() == registry.to_dict()

    def test_load_metrics_file_rejects_junk(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(TelemetryError):
            load_metrics_file(bad)
        bad.write_text('{"unrelated": 1}')
        with pytest.raises(TelemetryError):
            load_metrics_file(bad)


class TestCliStatsEndToEnd:
    def test_campaign_artifacts_feed_stats(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        rc = main([
            "reliability", "--scheme", "citadel", "--trials", "400",
            "--tsv-fit", "100", "--workers", "2",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
            "--trace-sample-every", "50",
        ])
        assert rc == 0
        capsys.readouterr()

        perf_path = tmp_path / "perf.json"
        rc = main([
            "perf", "--benchmark", "mcf", "--requests", "400",
            "--configs", "3dp", "--metrics-out", str(perf_path),
        ])
        assert rc == 0
        capsys.readouterr()

        rc = main([
            "stats", "--metrics", str(metrics_path), str(perf_path),
            "--trace", str(trace_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3DP corrections by dimension:" in out
        assert "dim1" in out
        assert "parity cache hit rate:" in out
        assert "trials: 400" in out
        assert "trace spans:" in out

    def test_stats_json_document(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        rc = main([
            "reliability", "--scheme", "3dp", "--trials", "200",
            "--tsv-fit", "100", "--metrics-out", str(metrics_path),
        ])
        assert rc == 0
        capsys.readouterr()
        assert main(["stats", "--metrics", str(metrics_path),
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["derived"]["trials"] == 200
        assert document["metrics"]["counters"]["engine/trials"] == 200

    def test_stats_without_inputs_is_usage_error(self, capsys):
        assert main(["stats"]) == 2
        capsys.readouterr()


class TestBenchReport:
    def test_build_report_is_deterministic(self, tmp_path):
        metrics_dir = tmp_path / "metrics"
        metrics_dir.mkdir()
        registry = MetricsRegistry()
        registry.inc("engine/trials", 100)
        registry.inc("engine/failures", 3)
        registry.inc("engine/faults_sampled", 40)
        (metrics_dir / "fig14.json").write_text(
            json.dumps(registry.to_dict())
        )
        other = MetricsRegistry()
        other.inc("perf/parity_lookups", 10)
        other.inc("perf/parity_hits", 9)
        (metrics_dir / "fig13.json").write_text(json.dumps(other.to_dict()))

        first = build_report(metrics_dir)
        second = build_report(metrics_dir)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert sorted(first["sources"]) == ["fig13", "fig14"]
        merged = first["merged"]["derived"]
        assert merged["trials"] == 100
        assert merged["parity_cache_hit_rate"] == pytest.approx(0.9)


class TestSamplingSidecar:
    """tools/bench_report.py re-checks the importance-sampling
    trial-reduction sidecar dropped by bench_sampling_speedup."""

    def _sidecar(self, tmp_path, **overrides):
        from tools.bench_report import check_sampling_sidecar

        payload = {
            "bench": "sampling_speedup",
            "trials": 2000,
            "threshold": 5.0,
            "trial_reduction": 2500.0,
            "estimates_consistent": True,
        }
        payload.update(overrides)
        (tmp_path / "bench_sampling_speedup.json").write_text(
            json.dumps(payload)
        )
        return check_sampling_sidecar(tmp_path)

    def test_absent_sidecar_passes(self, tmp_path):
        from tools.bench_report import check_sampling_sidecar

        assert check_sampling_sidecar(tmp_path) == 0

    def test_healthy_sidecar_passes(self, tmp_path, capsys):
        assert self._sidecar(tmp_path) == 0
        capsys.readouterr()

    def test_reduction_below_threshold_fails(self, tmp_path, capsys):
        assert self._sidecar(tmp_path, trial_reduction=4.9) == 1
        assert "trial reduction" in capsys.readouterr().err

    def test_inconsistent_estimates_fail(self, tmp_path, capsys):
        assert self._sidecar(tmp_path, estimates_consistent=False) == 1
        assert "disagree" in capsys.readouterr().err

    def test_mangled_sidecar_fails(self, tmp_path, capsys):
        assert self._sidecar(tmp_path, trial_reduction="not-a-number") == 1
        assert "unreadable" in capsys.readouterr().err
