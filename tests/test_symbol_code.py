"""Correctability of the 8-bit symbol (ChipKill-like) code under the three
data mappings of §II-D/§II-E."""

import pytest

from repro.ecc.symbol_code import SymbolCode
from repro.faults.types import (
    Permanence,
    make_addr_tsv_fault,
    make_bank_fault,
    make_bit_fault,
    make_column_fault,
    make_data_tsv_fault,
    make_row_fault,
    make_subarray_fault,
    make_word_fault,
)
from repro.stack.geometry import StackGeometry
from repro.stack.striping import StripingPolicy

P = Permanence.PERMANENT


@pytest.fixture
def geom():
    return StackGeometry()


def same_bank(geom):
    return SymbolCode(geom, StripingPolicy.SAME_BANK)


def across_banks(geom):
    return SymbolCode(geom, StripingPolicy.ACROSS_BANKS)


def across_channels(geom):
    return SymbolCode(geom, StripingPolicy.ACROSS_CHANNELS)


class TestSameBankSingleFaults:
    def test_bit_fault_correctable(self, geom):
        assert not same_bank(geom).is_uncorrectable(
            [make_bit_fault(geom, 0, 0, 0, 100, P)]
        )

    def test_word_fault_correctable(self, geom):
        # A 32-bit word stays inside one aligned 64-bit symbol unit.
        assert not same_bank(geom).is_uncorrectable(
            [make_word_fault(geom, 0, 0, 0, 4, P)]
        )

    def test_column_fault_correctable(self, geom):
        # One bit per line: a single symbol.
        assert not same_bank(geom).is_uncorrectable(
            [make_column_fault(geom, 0, 0, 9, P)]
        )

    def test_row_fault_fatal(self, geom):
        # The whole line is lost: all symbols of its codewords.
        assert same_bank(geom).is_uncorrectable(
            [make_row_fault(geom, 0, 0, 5, P)]
        )

    def test_bank_and_subarray_fault_fatal(self, geom):
        assert same_bank(geom).is_uncorrectable([make_bank_fault(geom, 0, 0, P)])
        assert same_bank(geom).is_uncorrectable(
            [make_subarray_fault(geom, 0, 0, 0, P)]
        )

    def test_dtsv_fault_fatal(self, geom):
        # Bits k and k+256 land in two different 64-bit slices.
        assert same_bank(geom).is_uncorrectable([make_data_tsv_fault(geom, 0, 1)])

    def test_atsv_fault_fatal(self, geom):
        assert same_bank(geom).is_uncorrectable([make_addr_tsv_fault(geom, 0, 0)])


class TestAcrossBanksSingleFaults:
    def test_bank_fault_correctable(self, geom):
        # The whole point of striping: one bank is one symbol.
        assert not across_banks(geom).is_uncorrectable(
            [make_bank_fault(geom, 0, 3, P)]
        )

    def test_row_and_column_faults_correctable(self, geom):
        assert not across_banks(geom).is_uncorrectable(
            [make_row_fault(geom, 0, 0, 5, P)]
        )
        assert not across_banks(geom).is_uncorrectable(
            [make_column_fault(geom, 0, 0, 9, P)]
        )

    def test_tsv_faults_fatal(self, geom):
        # TSVs are shared by all banks of the die: multi-symbol corruption.
        assert across_banks(geom).is_uncorrectable([make_data_tsv_fault(geom, 0, 7)])
        assert across_banks(geom).is_uncorrectable([make_addr_tsv_fault(geom, 0, 2)])


class TestAcrossChannelsSingleFaults:
    def test_everything_single_die_correctable(self, geom):
        code = across_channels(geom)
        for fault in [
            make_bit_fault(geom, 0, 0, 0, 0, P),
            make_row_fault(geom, 1, 1, 1, P),
            make_column_fault(geom, 2, 2, 2, P),
            make_bank_fault(geom, 3, 3, P),
            make_data_tsv_fault(geom, 4, 4),
            make_addr_tsv_fault(geom, 5, 5),
        ]:
            assert not code.is_uncorrectable([fault]), fault

    def test_min_faults_to_fail_is_two(self, geom):
        assert across_channels(geom).min_faults_to_fail() == 2


class TestPairs:
    def test_same_bank_two_faults_same_symbol_ok(self, geom):
        # Two bit faults in the same 64-bit slice of the same line.
        a = make_bit_fault(geom, 0, 0, 10, 3, P)
        b = make_bit_fault(geom, 0, 0, 10, 7, P)
        assert not same_bank(geom).is_uncorrectable([a, b])

    def test_same_bank_two_faults_different_symbols_fatal(self, geom):
        a = make_bit_fault(geom, 0, 0, 10, 3, P)
        b = make_bit_fault(geom, 0, 0, 10, 100, P)
        assert same_bank(geom).is_uncorrectable([a, b])

    def test_same_bank_different_lines_ok(self, geom):
        a = make_bit_fault(geom, 0, 0, 10, 3, P)
        b = make_bit_fault(geom, 0, 0, 10, 512 + 100, P)  # next line slot
        assert not same_bank(geom).is_uncorrectable([a, b])

    def test_across_banks_two_banks_same_die_fatal(self, geom):
        a = make_bank_fault(geom, 0, 0, P)
        b = make_bank_fault(geom, 0, 1, P)
        assert across_banks(geom).is_uncorrectable([a, b])

    def test_across_banks_two_banks_different_dies_ok(self, geom):
        a = make_bank_fault(geom, 0, 0, P)
        b = make_bank_fault(geom, 1, 1, P)
        assert not across_banks(geom).is_uncorrectable([a, b])

    def test_across_channels_two_dies_same_bank_fatal(self, geom):
        a = make_bank_fault(geom, 0, 3, P)
        b = make_bank_fault(geom, 1, 3, P)
        assert across_channels(geom).is_uncorrectable([a, b])

    def test_across_channels_two_dies_different_banks_ok(self, geom):
        a = make_bank_fault(geom, 0, 3, P)
        b = make_bank_fault(geom, 1, 4, P)
        assert not across_channels(geom).is_uncorrectable([a, b])

    def test_across_channels_two_tsv_faults_fatal(self, geom):
        a = make_addr_tsv_fault(geom, 0, 0)
        b = make_addr_tsv_fault(geom, 1, 1)
        assert across_channels(geom).is_uncorrectable([a, b])

    def test_across_channels_same_die_multiple_faults_ok(self, geom):
        faults = [
            make_bank_fault(geom, 2, 0, P),
            make_row_fault(geom, 2, 1, 7, P),
            make_data_tsv_fault(geom, 2, 9),
        ]
        assert not across_channels(geom).is_uncorrectable(faults)

    def test_disjoint_rows_ok_across_channels(self, geom):
        a = make_row_fault(geom, 0, 3, 10, P)
        b = make_row_fault(geom, 1, 3, 11, P)
        assert not across_channels(geom).is_uncorrectable([a, b])


class TestMetadataDie:
    META = 8

    def test_metadata_fault_alone_correctable_all_policies(self, geom):
        fault = make_bank_fault(geom, self.META, 0, P)
        for code in (same_bank(geom), across_banks(geom), across_channels(geom)):
            assert not code.is_uncorrectable([fault])

    def test_across_channels_meta_plus_data_same_bank_fatal(self, geom):
        # The metadata die is the ninth symbol unit.
        meta = make_bank_fault(geom, self.META, 3, P)
        data = make_bank_fault(geom, 0, 3, P)
        assert across_channels(geom).is_uncorrectable([meta, data])

    def test_across_banks_meta_bank_mirrors_die(self, geom):
        # Metadata bank d holds the check symbols for die d.
        meta = make_bank_fault(geom, self.META, 2, P)
        data = make_bank_fault(geom, 2, 5, P)
        other = make_bank_fault(geom, 3, 5, P)
        assert across_banks(geom).is_uncorrectable([meta, data])
        assert not across_banks(geom).is_uncorrectable([meta, other])

    def test_two_metadata_faults_ok(self, geom):
        a = make_bank_fault(geom, self.META, 0, P)
        b = make_row_fault(geom, self.META, 0, 9, P)
        for code in (same_bank(geom), across_banks(geom), across_channels(geom)):
            assert not code.is_uncorrectable([a, b])


class TestOverheadAndNames:
    def test_overhead_is_ecc_dimm_like(self, geom):
        assert same_bank(geom).storage_overhead_fraction() == pytest.approx(0.125)

    def test_names_include_policy(self, geom):
        assert "Same Bank" in same_bank(geom).name
        assert "Across Banks" in across_banks(geom).name
        assert "Across Channels" in across_channels(geom).name

    def test_min_faults(self, geom):
        assert same_bank(geom).min_faults_to_fail() == 1
        assert across_banks(geom).min_faults_to_fail(tsv_possible=True) == 1
        assert across_banks(geom).min_faults_to_fail(tsv_possible=False) == 2
