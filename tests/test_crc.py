"""Tests for the from-scratch CRC-32 (must match the standard IEEE 802.3
CRC-32 as implemented by zlib, and detect the fault patterns Citadel
relies on it for)."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.crc import (
    check_line,
    crc32,
    crc32_bitwise,
    crc32_with_address,
)


class TestReferenceVectors:
    def test_empty(self):
        assert crc32(b"") == 0

    def test_check_value(self):
        # The canonical CRC-32 check value.
        assert crc32(b"123456789") == 0xCBF43926

    def test_matches_zlib(self):
        for data in (b"", b"a", b"hello world", bytes(range(256))):
            assert crc32(data) == zlib.crc32(data)

    @given(st.binary(max_size=200))
    @settings(max_examples=100)
    def test_table_matches_bitwise(self, data):
        assert crc32(data) == crc32_bitwise(data)

    @given(st.binary(max_size=200))
    @settings(max_examples=100)
    def test_matches_zlib_property(self, data):
        assert crc32(data) == zlib.crc32(data)


class TestDetection:
    @given(
        st.binary(min_size=64, max_size=64),
        st.integers(0, 511),
    )
    @settings(max_examples=100)
    def test_single_bit_flip_always_detected(self, line, bit):
        flipped = bytearray(line)
        flipped[bit // 8] ^= 1 << (bit % 8)
        assert crc32(bytes(flipped)) != crc32(line)

    @given(
        st.binary(min_size=64, max_size=64),
        st.integers(0, 510),
    )
    @settings(max_examples=50)
    def test_dtsv_pattern_detected(self, line, bit):
        """A DTSV fault flips bit k and k+256 of the line; CRC-32 detects
        every burst shorter than 33 bits and, in practice, these pairs."""
        flipped = bytearray(line)
        for b in (bit, (bit + 256) % 512):
            flipped[b // 8] ^= 1 << (b % 8)
        assert crc32(bytes(flipped)) != crc32(line)


class TestAddressMixing:
    """TSV-Swap detection: the CRC covers address and data so a wrong-row
    read (address-TSV fault signature) mismatches (§V-C2)."""

    def test_same_data_different_address_mismatches(self):
        data = b"\xAA" * 64
        assert crc32_with_address(data, 0x1000) != crc32_with_address(data, 0x1040)

    def test_check_line_roundtrip(self):
        data = b"\x5A" * 64
        stored = crc32_with_address(data, 77)
        assert check_line(data, 77, stored)
        assert not check_line(data, 78, stored)
        assert not check_line(b"\x5B" + data[1:], 77, stored)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            crc32_with_address(b"x", -1)

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 2**40))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data, addr):
        assert check_line(data, addr, crc32_with_address(data, addr))
