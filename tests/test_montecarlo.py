"""Integration tests for the Monte-Carlo lifetime reliability engine."""

import random

import pytest

from repro.core.parity3dp import make_1dp, make_3dp
from repro.ecc.symbol_code import SymbolCode
from repro.faults.rates import FailureRates
from repro.faults.types import FaultKind
from repro.reliability.montecarlo import EngineConfig, LifetimeSimulator
from repro.reliability.results import ReliabilityResult
from repro.stack.geometry import StackGeometry
from repro.stack.striping import StripingPolicy


@pytest.fixture
def geom():
    return StackGeometry()


def simulator(geom, model, seed=1, tsv_fit=0.0, **cfg):
    return LifetimeSimulator(
        geom,
        FailureRates.paper_baseline(tsv_device_fit=tsv_fit),
        model,
        EngineConfig(**cfg),
        rng=random.Random(seed),
    )


class TestEngineBasics:
    def test_result_fields(self, geom):
        sim = simulator(geom, make_3dp(geom))
        result = sim.run(trials=50)
        assert result.trials == 50
        assert 0 <= result.failures <= 50
        assert 0 < result.stratum_weight <= 1
        assert result.min_faults == 2  # 3DP cannot fail with one fault

    def test_deterministic_given_seed(self, geom):
        a = simulator(geom, make_1dp(geom), seed=9).run(trials=200)
        b = simulator(geom, make_1dp(geom), seed=9).run(trials=200)
        assert a.failures == b.failures

    def test_default_min_faults_respects_tsv(self, geom):
        sb = SymbolCode(geom, StripingPolicy.SAME_BANK)
        assert simulator(geom, sb).default_min_faults() == 1
        ac = SymbolCode(geom, StripingPolicy.ACROSS_CHANNELS)
        assert simulator(geom, ac).default_min_faults() == 2
        ab = SymbolCode(geom, StripingPolicy.ACROSS_BANKS)
        assert simulator(geom, ab, tsv_fit=1430.0).default_min_faults() == 1
        assert simulator(geom, ab, tsv_fit=0.0).default_min_faults() == 2
        # TSV-Swap makes TSV single-fault kills impossible.
        assert (
            simulator(geom, ab, tsv_fit=1430.0, tsv_swap_standby=4)
            .default_min_faults()
            == 2
        )

    def test_label_includes_mitigations(self, geom):
        sim = simulator(geom, make_3dp(geom), tsv_swap_standby=4, use_dds=True)
        result = sim.run(trials=5)
        assert "3DP" in result.scheme_name
        assert "TSV-Swap" in result.scheme_name
        assert "DDS" in result.scheme_name

    def test_custom_label(self, geom):
        result = simulator(geom, make_3dp(geom)).run(trials=5, label="X")
        assert result.scheme_name == "X"


class TestMitigationEffects:
    def test_scrubbing_removes_transients(self, geom):
        """With a scrub interval longer than the lifetime, transient faults
        accumulate; with the paper's 12h interval they are removed — the
        failure probability must be visibly lower."""
        slow = simulator(
            geom, make_1dp(geom), seed=3, scrub_interval_hours=1e9
        ).run(trials=1500)
        fast = simulator(
            geom, make_1dp(geom), seed=3, scrub_interval_hours=12.0
        ).run(trials=1500)
        assert fast.failure_probability < slow.failure_probability

    def test_dds_improves_3dp(self, geom):
        plain = simulator(geom, make_3dp(geom), seed=4).run(trials=1500)
        with_dds = simulator(geom, make_3dp(geom), seed=4, use_dds=True).run(
            trials=1500
        )
        assert with_dds.failures < plain.failures

    def test_tsv_swap_neutralizes_tsv_faults(self, geom):
        """Figure 9's claim: with TSV-Swap, resilience at the highest TSV
        rate matches a system with no TSV faults at all."""
        sb = SymbolCode(geom, StripingPolicy.SAME_BANK)
        no_tsv = simulator(geom, sb, seed=5, tsv_fit=0.0).run(trials=800)
        swapped = simulator(
            geom, sb, seed=5, tsv_fit=1430.0, tsv_swap_standby=4
        ).run(trials=800)
        unswapped = simulator(geom, sb, seed=5, tsv_fit=1430.0).run(trials=800)
        assert unswapped.failure_probability > no_tsv.failure_probability
        assert swapped.failure_probability == pytest.approx(
            no_tsv.failure_probability, rel=0.35
        )

    def test_sparing_stats_collection(self, geom):
        sim = simulator(
            geom, make_3dp(geom), seed=6, use_dds=True, collect_sparing_stats=True
        )
        result = sim.run(trials=600, min_faults=1)
        assert result.sparing is not None
        hist = result.sparing.rows_histogram()
        assert hist  # at least some faulty banks observed
        assert all(rows >= 1 for rows in hist)


class TestStratification:
    def test_stratified_estimate_consistent_with_plain(self, geom):
        """The weighted (min_faults=1) estimator must agree with plain
        sampling within Monte-Carlo error."""
        model = SymbolCode(geom, StripingPolicy.SAME_BANK)
        plain = simulator(geom, model, seed=7).run(trials=4000, min_faults=0)
        strat = simulator(geom, model, seed=8).run(trials=4000, min_faults=1)
        assert strat.failure_probability == pytest.approx(
            plain.failure_probability, rel=0.25
        )

    def test_weight_is_tail_probability(self, geom):
        sim = simulator(geom, make_3dp(geom))
        result = sim.run(trials=10, min_faults=2)
        assert result.stratum_weight == pytest.approx(
            sim.injector.prob_at_least(2), rel=1e-9
        )


class TestResults:
    def test_failure_probability_and_ci(self):
        r = ReliabilityResult("x", trials=1000, failures=10, stratum_weight=0.5)
        assert r.failure_probability == pytest.approx(0.005)
        lo, hi = r.confidence_interval()
        assert lo < 0.005 < hi

    def test_improvement_over(self):
        a = ReliabilityResult("a", trials=100, failures=1, stratum_weight=1.0)
        b = ReliabilityResult("b", trials=100, failures=10, stratum_weight=1.0)
        assert a.improvement_over(b) == pytest.approx(10.0)
        zero = ReliabilityResult("z", trials=100, failures=0, stratum_weight=1.0)
        assert zero.improvement_over(b) == float("inf")

    def test_summary_format(self):
        r = ReliabilityResult("scheme", trials=10, failures=1, stratum_weight=1.0)
        assert "scheme" in r.summary()
        assert "P(fail)" in r.summary()


class TestMinFaultsDispatch:
    """``default_min_faults`` dispatches on the declared signature; it must
    not call-and-catch TypeError, which masks TypeErrors raised *inside*
    the model and strands the scheme on the wrong stratum."""

    class _BuggyTsvBranch(SymbolCode):
        """A model whose TSV branch contains a genuine TypeError bug."""

        def min_faults_to_fail(self, tsv_possible=True):
            if tsv_possible:
                return 1 + None  # the bug the old except clause hid
            return 2

    class _LegacyNoArg(SymbolCode):
        """A model predating the ``tsv_possible`` parameter."""

        def min_faults_to_fail(self):
            return 3

    def test_internal_typeerror_propagates(self, geom):
        model = self._BuggyTsvBranch(geom, StripingPolicy.ACROSS_BANKS)
        sim = simulator(geom, model, tsv_fit=1430.0)
        # The old try/except TypeError fell back to the no-arg call and
        # silently returned 2 here; the bug must surface instead.
        with pytest.raises(TypeError):
            sim.default_min_faults()

    def test_no_tsv_branch_still_works(self, geom):
        model = self._BuggyTsvBranch(geom, StripingPolicy.ACROSS_BANKS)
        assert simulator(geom, model, tsv_fit=0.0).default_min_faults() == 2

    def test_legacy_signature_dispatches_to_no_arg_call(self, geom):
        model = self._LegacyNoArg(geom, StripingPolicy.ACROSS_BANKS)
        assert simulator(geom, model, tsv_fit=1430.0).default_min_faults() == 3


class TestSampledWeight:
    """The result's stratum weight is the weight the injector sampled the
    trials with, and the engine cross-checks it against its own tail
    probability so the two formulas cannot drift apart unnoticed."""

    def test_result_weight_is_exactly_the_sampled_weight(self, geom):
        sim = simulator(geom, make_3dp(geom))
        sampled = []
        original = sim.injector.sample_lifetime

        def spy(lifetime_hours, min_faults=0):
            faults, weight = original(lifetime_hours, min_faults=min_faults)
            sampled.append(weight)
            return faults, weight

        sim.injector.sample_lifetime = spy
        result = sim.run(trials=10, min_faults=2)
        assert sampled and all(w == sampled[0] for w in sampled)
        assert result.stratum_weight == sampled[0]  # same float, not approx

    def test_disagreeing_weight_violates_contract(self, geom):
        from repro import contracts
        from repro.errors import ContractViolation

        sim = simulator(geom, make_3dp(geom))
        original = sim.injector.sample_lifetime

        def tampered(lifetime_hours, min_faults=0):
            faults, weight = original(lifetime_hours, min_faults=min_faults)
            return faults, weight * 0.5  # a silently biased estimator
        sim.injector.sample_lifetime = tampered
        if not contracts.enabled():
            pytest.skip("contracts disabled in this environment")
        with pytest.raises(ContractViolation):
            sim.run(trials=2, min_faults=2)


class TestScrubEpochBoundaries:
    """Scrub scheduling counts integer boundary epochs with one consistent
    ``(k + 1) * interval <= t`` comparison.  The old float chain
    ``next_scrub = (t // interval + 1) * interval`` disagreed with its own
    trigger comparison at exact-boundary arrivals, re-running a scrub pass
    (double-counting DDS sparing demand) or skipping one."""

    @staticmethod
    def _fixed_fault_sim(geom, times, **cfg):
        from repro.faults.types import Permanence, make_row_fault

        sim = simulator(
            geom, make_3dp(geom), collect_metrics=True, **cfg
        )
        faults = [
            make_row_fault(geom, 0, 0, 5, Permanence.TRANSIENT).at_time(t)
            for t in times
        ]
        sim.injector.sample_lifetime = (
            lambda lifetime_hours, min_faults=0: (list(faults), 1.0)
        )
        return sim

    def test_boundary_arrival_scrubs_exactly_once(self, geom):
        # 3 * 0.3 == 0.8999999999999999 in binary64: the first arrival
        # lands exactly on scrub boundary 3.  The old scheduler set
        # next_scrub equal to the arrival time and re-scrubbed at the
        # second arrival with no boundary in between (2 passes).
        boundary = 3 * 0.3
        sim = self._fixed_fault_sim(
            geom, [boundary, 0.95], scrub_interval_hours=0.3
        )
        result = sim.run(trials=1, min_faults=0)
        assert result.metrics.counter("engine/scrub_passes") == 1

    def test_exact_multiple_interval_boundary(self, geom):
        # With the paper's 12h interval products are exact: an arrival at
        # t=24.0 crosses boundaries 1 and 2 (collapsed into one pass) and
        # an arrival at 24.5 must not scrub again.
        sim = self._fixed_fault_sim(
            geom, [24.0, 24.5], scrub_interval_hours=12.0
        )
        result = sim.run(trials=1, min_faults=0)
        assert result.metrics.counter("engine/scrub_passes") == 1

    def test_epoch_search_matches_naive_reference(self, geom):
        """_scrub_epoch_at == the largest k reachable by stepping the same
        comparison from zero, for adversarial interval/time pairs."""
        import random as _random

        rng = _random.Random(42)
        intervals = [0.3, 0.1, 12.0, 7.3, 1e-3]
        for interval in intervals:
            for _ in range(200):
                k_true = rng.randrange(0, 5000)
                jitter = rng.choice([0.0, 1e-16, -1e-16, 1e-12, -1e-12])
                t = k_true * interval * (1.0 + jitter)
                if t < 0:
                    continue
                naive = 0
                while (naive + 1) * interval <= t:
                    naive += 1
                got = LifetimeSimulator._scrub_epoch_at(t, 0, interval)
                assert got == naive, (interval, t)
                # Restarting mid-way (as the engine does) agrees too.
                mid = naive // 2
                assert LifetimeSimulator._scrub_epoch_at(t, mid, interval) == naive
