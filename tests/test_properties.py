"""Property-based tests (hypothesis) on cross-cutting invariants of the
correctability models and mitigation filters."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dds import DDSController
from repro.core.parity3dp import make_1dp, make_2dp, make_3dp
from repro.core.tsv_swap import apply_tsv_swap
from repro.ecc import BCHCode, RAID5, SECDED, SymbolCode, TwoDimECC
from repro.faults.types import (
    Permanence,
    make_addr_tsv_fault,
    make_bank_fault,
    make_bit_fault,
    make_column_fault,
    make_data_tsv_fault,
    make_row_fault,
    make_subarray_fault,
    make_word_fault,
)
from repro.stack.geometry import StackGeometry
from repro.stack.striping import StripingPolicy

GEOM = StackGeometry()


@st.composite
def faults(draw):
    """One random fault of any kind, anywhere in the stack."""
    kind = draw(st.sampled_from(
        ["bit", "word", "row", "column", "subarray", "bank", "dtsv", "atsv"]
    ))
    perm = draw(st.sampled_from([Permanence.TRANSIENT, Permanence.PERMANENT]))
    die = draw(st.integers(0, GEOM.total_dies - 1))
    bank = draw(st.integers(0, GEOM.banks_per_die - 1))
    row = draw(st.integers(0, GEOM.rows_per_bank - 1))
    col = draw(st.integers(0, GEOM.row_bits - 1))
    if kind == "bit":
        return make_bit_fault(GEOM, die, bank, row, col, perm)
    if kind == "word":
        word = draw(st.integers(0, GEOM.row_bits // 32 - 1))
        return make_word_fault(GEOM, die, bank, row, word, perm)
    if kind == "row":
        return make_row_fault(GEOM, die, bank, row, perm)
    if kind == "column":
        return make_column_fault(GEOM, die, bank, col, perm)
    if kind == "subarray":
        sub = draw(st.integers(0, GEOM.subarrays_per_bank - 1))
        return make_subarray_fault(GEOM, die, bank, sub, perm)
    if kind == "bank":
        return make_bank_fault(GEOM, die, bank, perm)
    channel = draw(st.integers(0, GEOM.channels - 1))
    if kind == "dtsv":
        idx = draw(st.integers(0, GEOM.data_tsvs_per_channel - 1))
        return make_data_tsv_fault(GEOM, channel, idx)
    idx = draw(st.integers(0, GEOM.addr_tsvs_per_channel - 1))
    return make_addr_tsv_fault(GEOM, channel, idx, draw(st.integers(0, 1)))


ALL_MODELS = [
    make_1dp(GEOM),
    make_2dp(GEOM),
    make_3dp(GEOM),
    SymbolCode(GEOM, StripingPolicy.SAME_BANK),
    SymbolCode(GEOM, StripingPolicy.ACROSS_BANKS),
    SymbolCode(GEOM, StripingPolicy.ACROSS_CHANNELS),
    BCHCode(GEOM),
    RAID5(GEOM),
    SECDED(GEOM),
    TwoDimECC(GEOM),
]


class TestMonotonicity:
    """Adding a fault can never make an uncorrectable set correctable."""

    @given(st.lists(faults(), min_size=1, max_size=5), faults())
    @settings(max_examples=60, deadline=None)
    def test_uncorrectable_is_monotone(self, fault_set, extra):
        for model in ALL_MODELS:
            if model.is_uncorrectable(fault_set):
                assert model.is_uncorrectable(fault_set + [extra]), model.name

    @given(st.lists(faults(), min_size=2, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_subsets_of_correctable_are_correctable(self, fault_set):
        for model in ALL_MODELS:
            if not model.is_uncorrectable(fault_set):
                for i in range(len(fault_set)):
                    subset = fault_set[:i] + fault_set[i + 1:]
                    assert not model.is_uncorrectable(subset), model.name


class TestEmptyAndSingle:
    def test_empty_set_is_always_correctable(self):
        for model in ALL_MODELS:
            assert not model.is_uncorrectable([])

    @given(faults())
    @settings(max_examples=60, deadline=None)
    def test_min_faults_honest(self, fault):
        """A model claiming min_faults_to_fail()==2 must never fail on a
        single fault."""
        for model in ALL_MODELS:
            try:
                floor = model.min_faults_to_fail(tsv_possible=True)
            except TypeError:
                floor = model.min_faults_to_fail()
            if floor >= 2:
                assert not model.is_uncorrectable([fault]), model.name


class TestDimensionHierarchy:
    @given(st.lists(faults(), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_more_dimensions_never_hurt(self, fault_set):
        one = make_1dp(GEOM).is_uncorrectable(fault_set)
        two = make_2dp(GEOM).is_uncorrectable(fault_set)
        three = make_3dp(GEOM).is_uncorrectable(fault_set)
        if not one:
            assert not two
        if not two:
            assert not three


class TestTSVSwapFilter:
    @given(st.lists(faults(), min_size=0, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_filter_only_removes_tsv_faults(self, fault_set):
        visible, _ = apply_tsv_swap(fault_set, GEOM)
        visible_uids = {f.uid for f in visible}
        for fault in fault_set:
            if not fault.kind.is_tsv:
                assert fault.uid in visible_uids
        for fault in visible:
            assert fault.uid in {f.uid for f in fault_set}

    @given(st.lists(faults(), min_size=0, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_filter_is_deterministic(self, fault_set):
        a, _ = apply_tsv_swap(fault_set, GEOM)
        b, _ = apply_tsv_swap(fault_set, GEOM)
        assert [f.uid for f in a] == [f.uid for f in b]


class TestDDSInvariants:
    @given(st.lists(faults(), min_size=0, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_scrub_output_subset_of_input(self, fault_set):
        permanent = [f for f in fault_set if f.is_permanent]
        dds = DDSController(GEOM)
        still_live, report = dds.process_scrub(permanent)
        input_uids = {f.uid for f in permanent}
        assert {f.uid for f in still_live} <= input_uids
        # Every input fault is accounted for exactly once.
        accounted = (
            len(report.row_spared) + len(report.bank_spared)
            + len(report.not_spared)
        )
        meta_only = sum(
            1 for f in permanent
            if all(GEOM.is_metadata_die(d) for d in f.footprint.dies)
        )
        assert accounted == len(permanent) - meta_only

    @given(st.lists(faults(), min_size=0, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_bank_spares_never_exceed_budget(self, fault_set):
        permanent = [f for f in fault_set if f.is_permanent]
        dds = DDSController(GEOM, spare_banks=2)
        dds.process_scrub(permanent)
        assert dds.brt_slots_free >= 0
        assert sum(1 for owner in dds._brt if owner is not None) <= 2
