"""Tests for the paper-vs-measured reporting helpers."""

import math

import pytest

from repro.analysis.report import (
    ExperimentReport,
    ExperimentRow,
    geomean,
    same_order_of_magnitude,
)


class TestExperimentReport:
    def test_render_contains_all_rows(self):
        report = ExperimentReport("Figure X", "Test experiment")
        report.add("series-a", 1.5, 1.4, unit="x")
        report.add("series-b", None, 0.001, unit="p", note="hello")
        report.note("footnote")
        text = report.render()
        assert "Figure X" in text
        assert "series-a" in text and "series-b" in text
        assert "1.50x" in text and "1.40x" in text
        assert "1.00e-03" in text
        assert "footnote" in text and "hello" in text

    def test_percentage_formatting(self):
        report = ExperimentReport("T", "t")
        report.add("r", 0.85, 0.8527, unit="%")
        text = report.render()
        assert "85.00%" in text and "85.27%" in text

    def test_missing_values_render_dash(self):
        report = ExperimentReport("T", "t")
        report.add("r", None, None)
        assert "-" in report.render()

    def test_row_ratio(self):
        row = ExperimentRow("r", paper=2.0, measured=3.0)
        assert row.ratio() == pytest.approx(1.5)
        assert ExperimentRow("r", None, 3.0).ratio() is None
        assert ExperimentRow("r", 2.0, None).ratio() is None


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_matches_log_definition(self):
        values = [1.1, 0.9, 1.25, 2.23]
        expected = math.exp(sum(map(math.log, values)) / len(values))
        assert geomean(values) == pytest.approx(expected)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestSameOrderOfMagnitude:
    def test_within_slack(self):
        assert same_order_of_magnitude(1e-4, 5e-4)
        assert same_order_of_magnitude(5e-4, 1e-4)
        assert not same_order_of_magnitude(1e-4, 5e-3)

    def test_zero_is_never_same(self):
        assert not same_order_of_magnitude(0.0, 1e-4)
