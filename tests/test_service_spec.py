"""Tests for the campaign spec model and its content address.

The result store keys on :meth:`CampaignSpec.spec_hash`, so the hash
must be (a) stable across every equivalent phrasing of the same
campaign — dict key order, citadel's implied mitigations, float vs int
literals — and (b) sensitive to anything that changes the Monte-Carlo
outcome (seed, shard size, geometry).  Hypothesis drives the key-order
property over randomly generated spec documents.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.service.jobs import (
    CITADEL_DEFAULT_STANDBY_TSVS,
    GEOMETRY_FIELDS,
    SPEC_SCHEMA_VERSION,
    CampaignSpec,
    Job,
    JobState,
    clone_spec,
)


class TestValidation:
    def test_defaults_are_valid(self):
        spec = CampaignSpec()
        assert spec.scheme == "citadel"
        assert spec.trials == 20000

    @pytest.mark.parametrize(
        "overrides",
        [
            {"scheme": "nope"},
            {"trials": 0},
            {"trials": -5},
            {"scale": 0},
            {"tsv_fit": -1.0},
            {"tsv_swap": -1},
            {"scrub_hours": 0.0},
            {"scrub_hours": -12.0},
            {"shard_size": 0},
            {"sampling": "nope"},
            {"sampling": "IMPORTANCE"},
            {"target_ci_width": 0.0},
            {"target_ci_width": -0.01},
            {"target_ci_width": True},
            {"target_ci_width": "0.01"},
            {"geometry": {"not_a_field": 2}},
            {"geometry": {"data_dies": 0}},
            {"geometry": {"data_dies": 2.5}},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(SpecError):
            CampaignSpec(**overrides)

    def test_unknown_sampling_names_the_valid_methods(self):
        with pytest.raises(SpecError, match="unknown sampling method"):
            CampaignSpec(sampling="antithetic")
        with pytest.raises(SpecError, match="stratified"):
            CampaignSpec.from_dict({"sampling": "antithetic"})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown spec field"):
            CampaignSpec.from_dict({"scheme": "secded", "workers": 4})

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(SpecError, match="schema"):
            CampaignSpec.from_dict({"schema": SPEC_SCHEMA_VERSION + 1})

    def test_from_dict_rejects_non_boolean_flags(self):
        with pytest.raises(SpecError, match="dds"):
            CampaignSpec.from_dict({"scheme": "3dp", "dds": 1})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(SpecError, match="JSON object"):
            CampaignSpec.from_dict(["not", "a", "dict"])


class TestCanonicalization:
    def test_citadel_bakes_in_mitigations(self):
        spec = CampaignSpec(scheme="citadel")
        assert spec.tsv_swap == CITADEL_DEFAULT_STANDBY_TSVS
        assert spec.dds is True

    def test_citadel_phrasings_hash_identically(self):
        implicit = CampaignSpec(scheme="citadel")
        explicit = CampaignSpec(
            scheme="citadel",
            tsv_swap=CITADEL_DEFAULT_STANDBY_TSVS,
            dds=True,
        )
        assert implicit.spec_hash() == explicit.spec_hash()

    def test_citadel_respects_explicit_tsv_swap(self):
        spec = CampaignSpec(scheme="citadel", tsv_swap=8)
        assert spec.tsv_swap == 8
        assert spec.spec_hash() != CampaignSpec(scheme="citadel").spec_hash()

    def test_geometry_key_order_is_irrelevant(self):
        a = CampaignSpec(geometry={"data_dies": 4, "banks_per_die": 8})
        b = CampaignSpec(geometry={"banks_per_die": 8, "data_dies": 4})
        assert a.spec_hash() == b.spec_hash()

    def test_canonical_json_is_byte_stable(self):
        spec = CampaignSpec(scheme="secded", trials=500, seed=9)
        assert spec.canonical_json() == spec.canonical_json()
        # Sorted keys, compact separators: re-encoding the parsed form
        # the same way reproduces the exact bytes.
        parsed = json.loads(spec.canonical_json())
        assert (
            json.dumps(parsed, sort_keys=True, separators=(",", ":"))
            == spec.canonical_json()
        )

    def test_roundtrip_through_from_dict(self):
        spec = CampaignSpec(
            scheme="3dp",
            trials=1234,
            scale=3,
            tsv_fit=50.0,
            seed=7,
            geometry={"data_dies": 4},
        )
        again = CampaignSpec.from_dict(spec.canonical_dict())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"seed": 1},
            {"shard_size": 123},
            {"trials": 19999},
            {"scale": 2},
            {"tsv_fit": 1.0},
            {"scrub_hours": 24.0},
            {"modes": True},
            {"sampling": "stratified"},
            {"sampling": "importance"},
            {"target_ci_width": 0.01},
            {"geometry": {"data_dies": 4}},
        ],
    )
    def test_outcome_affecting_knobs_change_the_hash(self, overrides):
        base = CampaignSpec(scheme="secded")
        assert clone_spec(base, **overrides).spec_hash() != base.spec_hash()

    def test_sampling_fields_flow_into_engine_config(self):
        spec = CampaignSpec(sampling="importance", target_ci_width=0.02)
        config = spec.engine_config()
        assert config.sampling == "importance"
        assert config.target_ci_width == 0.02

    def test_target_ci_width_coerced_to_float(self):
        # An int width is a valid phrasing; the canonical form is float,
        # so both phrasings share one content address.
        spec = CampaignSpec(target_ci_width=1)
        assert isinstance(spec.target_ci_width, float)
        assert spec.spec_hash() == CampaignSpec(target_ci_width=1.0).spec_hash()

    def test_execution_params_are_not_spec_fields(self):
        # Workers/priority/retries live on the Job, not the spec: an
        # 8-worker and a 1-worker submission share one cache entry.
        field_names = {f.name for f in dataclasses.fields(CampaignSpec)}
        assert field_names.isdisjoint({"workers", "priority", "max_retries"})

    def test_effective_trials_scales_down(self):
        assert CampaignSpec(trials=3000, scale=10).effective_trials == 300
        assert CampaignSpec(trials=5, scale=100).effective_trials == 1


#: Geometry overrides drawn from the real StackGeometry field names.
geometry_dicts = st.dictionaries(
    st.sampled_from(GEOMETRY_FIELDS),
    st.integers(min_value=1, max_value=16),
    max_size=3,
)

spec_documents = st.fixed_dictionaries(
    {},
    optional={
        "scheme": st.sampled_from(["citadel", "3dp", "secded", "raid5"]),
        "trials": st.integers(min_value=1, max_value=10**6),
        "scale": st.integers(min_value=1, max_value=100),
        "tsv_fit": st.floats(min_value=0, max_value=1e4, allow_nan=False),
        "dds": st.booleans(),
        "seed": st.integers(min_value=-(2**31), max_value=2**31),
        "shard_size": st.integers(min_value=1, max_value=10**5),
        "modes": st.booleans(),
        "sampling": st.sampled_from(["naive", "stratified", "importance"]),
        "target_ci_width": st.one_of(
            st.none(),
            st.floats(
                min_value=1e-9, max_value=1.0, allow_nan=False,
                allow_infinity=False,
            ),
        ),
        "geometry": geometry_dicts,
    },
)


class TestHashKeyOrderProperty:
    @given(document=spec_documents, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_spec_hash_ignores_dict_key_order(self, document, data):
        """Content address is invariant under any permutation of the
        submitted document's keys (including nested geometry keys)."""
        reference = CampaignSpec.from_dict(document)
        keys = data.draw(st.permutations(list(document)))
        shuffled = {key: document[key] for key in keys}
        if isinstance(shuffled.get("geometry"), dict):
            geo_keys = data.draw(st.permutations(list(shuffled["geometry"])))
            shuffled["geometry"] = {
                key: shuffled["geometry"][key] for key in geo_keys
            }
        assert CampaignSpec.from_dict(shuffled).spec_hash() == (
            reference.spec_hash()
        )

    @given(document=spec_documents)
    @settings(max_examples=60, deadline=None)
    def test_json_roundtrip_preserves_the_hash(self, document):
        spec = CampaignSpec.from_dict(document)
        rehydrated = CampaignSpec.from_dict(json.loads(spec.canonical_json()))
        assert rehydrated.spec_hash() == spec.spec_hash()


class TestJobModel:
    def test_lifecycle_states(self):
        assert not JobState.QUEUED.terminal
        assert not JobState.RUNNING.terminal
        assert JobState.DONE.terminal
        assert JobState.FAILED.terminal
        assert JobState.CANCELLED.terminal

    def test_to_dict_is_json_ready(self):
        job = Job(id="j1", spec=CampaignSpec(scheme="secded"))
        document = json.loads(json.dumps(job.to_dict()))
        assert document["id"] == "j1"
        assert document["state"] == "queued"
        assert document["spec_hash"] == job.spec.spec_hash()
        assert document["cache_hit"] is False

    def test_job_validates_workers(self):
        from repro.errors import ContractViolation

        with pytest.raises(ContractViolation):
            Job(id="j1", spec=CampaignSpec(), workers=0)
