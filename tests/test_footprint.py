"""Unit + property tests for the address/mask footprint algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults.footprint import Footprint, RangeMask
from repro.stack.geometry import StackGeometry

WIDTH = 8  # small universe for exhaustive checks


def members(rm: RangeMask):
    return {v for v in range(1 << rm.width) if v in rm}


@st.composite
def range_masks(draw, width=WIDTH):
    base = draw(st.integers(0, (1 << width) - 1))
    mask = draw(st.integers(0, (1 << width) - 1))
    return RangeMask(base=base, mask=mask, width=width)


class TestRangeMaskBasics:
    def test_single(self):
        rm = RangeMask.single(5, WIDTH)
        assert members(rm) == {5}
        assert len(rm) == 1
        assert rm.is_singleton()

    def test_full(self):
        rm = RangeMask.full(4)
        assert len(rm) == 16
        assert rm.is_full()

    def test_aligned_block(self):
        rm = RangeMask.aligned_block(8, 4, WIDTH)
        assert members(rm) == {8, 9, 10, 11}

    def test_aligned_block_rejects_misaligned(self):
        with pytest.raises(ConfigurationError):
            RangeMask.aligned_block(6, 4, WIDTH)

    def test_aligned_block_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            RangeMask.aligned_block(0, 3, WIDTH)

    def test_address_bit_selects_half(self):
        rm = RangeMask.address_bit(2, 1, WIDTH)
        got = members(rm)
        assert len(got) == (1 << WIDTH) // 2
        assert all(v >> 2 & 1 for v in got)

    def test_address_bit_zero_value(self):
        rm = RangeMask.address_bit(0, 0, 3)
        assert members(rm) == {0, 2, 4, 6}

    def test_base_canonicalized(self):
        a = RangeMask(base=0b1111, mask=0b0011, width=4)
        b = RangeMask(base=0b1100, mask=0b0011, width=4)
        assert a == b

    def test_rejects_out_of_width(self):
        with pytest.raises(ConfigurationError):
            RangeMask(base=256, mask=0, width=8)
        with pytest.raises(ConfigurationError):
            RangeMask(base=0, mask=256, width=8)

    def test_iter_values_sorted_small(self):
        rm = RangeMask(base=0b0001, mask=0b0110, width=4)
        assert list(rm.iter_values()) == [1, 3, 5, 7]

    def test_iter_values_refuses_huge(self):
        rm = RangeMask.full(30)
        with pytest.raises(ConfigurationError):
            list(rm.iter_values())


class TestRangeMaskAlgebra:
    @given(range_masks(), range_masks())
    @settings(max_examples=200)
    def test_intersects_matches_enumeration(self, a, b):
        assert a.intersects(b) == bool(members(a) & members(b))

    @given(range_masks(), range_masks())
    @settings(max_examples=200)
    def test_intersection_is_exact(self, a, b):
        inter = a.intersection(b)
        expected = members(a) & members(b)
        if inter is None:
            assert not expected
        else:
            assert members(inter) == expected

    @given(range_masks(), range_masks())
    @settings(max_examples=200)
    def test_covers_matches_enumeration(self, a, b):
        assert a.covers(b) == (members(b) <= members(a))

    @given(range_masks())
    @settings(max_examples=50)
    def test_len_matches_enumeration(self, a):
        assert len(a) == len(members(a))

    @given(range_masks())
    @settings(max_examples=50)
    def test_self_intersection_is_identity(self, a):
        assert a.intersection(a) == a

    def test_width_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            RangeMask.full(4).intersects(RangeMask.full(5))

    def test_intersection_size(self):
        a = RangeMask(base=0, mask=0b0011, width=4)
        b = RangeMask(base=0, mask=0b0110, width=4)
        assert a.intersection_size(b) == 2  # {0, 2}

    def test_disjoint_intersection_size_zero(self):
        a = RangeMask.single(1, 4)
        b = RangeMask.single(2, 4)
        assert a.intersection_size(b) == 0


class TestFootprint:
    @pytest.fixture
    def geom(self):
        return StackGeometry.small()

    def _bit(self, geom, die=0, bank=0, row=3, col=7):
        return Footprint.build(
            geom,
            dies=[die],
            banks=[bank],
            rows=RangeMask.single(row, geom.row_address_bits),
            cols=RangeMask.single(col, geom.col_address_bits),
        )

    def test_build_validates_coordinates(self, geom):
        with pytest.raises(Exception):
            self._bit(geom, die=99)
        with pytest.raises(Exception):
            self._bit(geom, bank=99)

    def test_build_validates_mask_widths(self, geom):
        with pytest.raises(ConfigurationError):
            Footprint.build(
                geom,
                dies=[0],
                banks=[0],
                rows=RangeMask.full(3),  # wrong width
                cols=RangeMask.full(geom.col_address_bits),
            )

    def test_contains(self, geom):
        fp = self._bit(geom)
        assert fp.contains(0, 0, 3, 7)
        assert not fp.contains(0, 0, 3, 8)
        assert not fp.contains(1, 0, 3, 7)

    def test_counts(self, geom):
        fp = Footprint.build(
            geom,
            dies=[0, 1],
            banks=[0],
            rows=RangeMask.full(geom.row_address_bits),
            cols=RangeMask.single(0, geom.col_address_bits),
        )
        assert fp.num_bank_instances == 2
        assert fp.num_rows == geom.rows_per_bank
        assert fp.num_cols == 1
        assert fp.total_bits() == 2 * geom.rows_per_bank

    def test_overlap_requires_all_axes(self, geom):
        a = self._bit(geom, die=0, bank=0, row=3, col=7)
        assert a.overlaps(self._bit(geom, die=0, bank=0, row=3, col=7))
        assert not a.overlaps(self._bit(geom, die=1, bank=0, row=3, col=7))
        assert not a.overlaps(self._bit(geom, die=0, bank=1, row=3, col=7))
        assert not a.overlaps(self._bit(geom, die=0, bank=0, row=4, col=7))
        assert not a.overlaps(self._bit(geom, die=0, bank=0, row=3, col=8))

    def test_covers_nested(self, geom):
        bank = Footprint.build(
            geom,
            dies=[0],
            banks=[0],
            rows=RangeMask.full(geom.row_address_bits),
            cols=RangeMask.full(geom.col_address_bits),
        )
        bit = self._bit(geom, die=0, bank=0)
        assert bank.covers(bit)
        assert not bit.covers(bank)
        assert bank.covers(bank)

    def test_requires_nonempty_dies_and_banks(self, geom):
        with pytest.raises(ConfigurationError):
            Footprint(
                dies=frozenset(),
                banks=frozenset([0]),
                rows=RangeMask.full(geom.row_address_bits),
                cols=RangeMask.full(geom.col_address_bits),
            )
