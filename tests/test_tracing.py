"""TraceWriter/TraceRecord schema, nesting, sampling; ProgressReporter."""

import io
import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.progress import ProgressReporter
from repro.telemetry.tracing import (
    TRACE_SCHEMA_VERSION,
    TraceRecord,
    TraceWriter,
    read_trace,
)


class TestTraceRecord:
    def test_round_trip(self):
        record = TraceRecord(
            kind="event", name="failure", path="campaign/shard-0/failure",
            t=1.25, attrs={"trial": 17},
        )
        assert TraceRecord.from_dict(record.to_dict()) == record

    def test_empty_attrs_omitted_from_dict(self):
        record = TraceRecord(kind="begin", name="x", path="x", t=0.0, attrs={})
        assert "attrs" not in record.to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(TelemetryError):
            TraceRecord.from_dict({"kind": "bogus", "name": "x",
                                   "path": "x", "t": 0.0})

    def test_missing_field_rejected(self):
        with pytest.raises(TelemetryError):
            TraceRecord.from_dict({"kind": "event", "name": "x", "t": 0.0})


class TestTraceWriter:
    def test_nested_scopes_build_paths(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as tracer:
            with tracer.span("campaign"):
                with tracer.span("shard-0"):
                    tracer.event("failure", trial=3)
        records = read_trace(path)
        kinds = [r.kind for r in records]
        assert kinds == ["meta", "begin", "begin", "event", "end", "end"]
        event = records[3]
        assert event.path == "campaign/shard-0/failure"
        assert event.attrs == {"trial": 3}
        # Ends carry their span's duration and close inner-first.
        assert records[4].name == "shard-0"
        assert records[5].name == "campaign"
        assert records[4].attrs["seconds"] >= 0.0

    def test_file_is_valid_jsonl_with_meta_header(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, sample_every=7) as tracer:
            tracer.event("ping")
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "meta"
        assert parsed[0]["attrs"]["schema"] == TRACE_SCHEMA_VERSION
        assert parsed[0]["attrs"]["sample_every"] == 7

    def test_deterministic_modulo_sampling(self, tmp_path):
        tracer = TraceWriter(tmp_path / "t.jsonl", sample_every=3)
        sampled = [i for i in range(10) if tracer.should_sample(i)]
        assert sampled == [0, 3, 6, 9]
        tracer.close()

    def test_flush_rewrites_complete_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = TraceWriter(path, flush_every=1)
        tracer.event("a")
        first = read_trace(path)
        tracer.event("b")
        second = read_trace(path)
        # Each flush atomically rewrites the whole record stream.
        assert [r.name for r in first] == ["trace", "a"]
        assert [r.name for r in second] == ["trace", "a", "b"]
        tracer.close()

    def test_closed_writer_rejects_records(self, tmp_path):
        tracer = TraceWriter(tmp_path / "t.jsonl")
        tracer.close()
        with pytest.raises(TelemetryError):
            tracer.event("late")

    def test_read_trace_rejects_torn_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "meta", "name": "trace", "path": "", '
                        '"t": 0.0, "attrs": {"schema": 1}}\n{"kind": "ev\n')
        with pytest.raises(TelemetryError):
            read_trace(path)

    def test_read_trace_requires_meta_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "event", "name": "x", "path": "x", '
                        '"t": 0.0}\n')
        with pytest.raises(TelemetryError):
            read_trace(path)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestProgressReporter:
    def make(self, clock, **kwargs):
        stream = io.StringIO()
        kwargs.setdefault("label", "campaign")
        reporter = ProgressReporter(
            10, 5000, stream=stream, clock=clock, **kwargs
        )
        return reporter, stream

    def test_throttles_below_min_interval(self):
        clock = FakeClock()
        reporter, _ = self.make(clock, min_interval_s=1.0)
        assert reporter.update(1, 500)
        clock.now = 0.5
        assert not reporter.update(2, 1000)
        clock.now = 1.5
        assert reporter.update(2, 1000)
        assert reporter.lines_emitted == 2

    def test_renders_rate_and_eta(self):
        clock = FakeClock()
        reporter, stream = self.make(clock)
        clock.now = 2.0
        reporter.update(4, 2000)
        line = stream.getvalue().strip()
        assert "[campaign] shards 4/10" in line
        assert "trials 2000/5000" in line
        assert "1000 trials/s" in line
        assert "ETA 3s" in line

    def test_budget_countdown(self):
        clock = FakeClock()
        reporter, stream = self.make(clock, time_budget_s=60.0)
        clock.now = 10.0
        reporter.update(1, 100)
        assert "budget 50s left" in stream.getvalue()

    def test_finish_forces_a_line(self):
        clock = FakeClock()
        reporter, stream = self.make(clock, min_interval_s=100.0)
        reporter.update(1, 100)
        reporter.finish(10, 5000)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert "shards 10/10" in lines[-1]


class TestTraceWriterThreadSafety:
    """One writer is shared by every scheduler worker thread; concurrent
    events (with flushes forced mid-stream) must neither drop records
    nor tear the file (REPRO009 regression: internal RLock)."""

    def test_concurrent_events_all_recorded(self, tmp_path):
        import threading

        writer = TraceWriter(tmp_path / "trace.jsonl", flush_every=16)
        threads_n, events_n = 6, 300
        barrier = threading.Barrier(threads_n)

        def body(tid):
            barrier.wait()
            for i in range(events_n):
                writer.event("tick", tid=tid, i=i)

        threads = [
            threading.Thread(target=body, args=(t,)) for t in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        writer.close()
        records = read_trace(tmp_path / "trace.jsonl")
        events = [r for r in records if r.kind == "event"]
        assert len(events) == threads_n * events_n
        seen = {(r.attrs["tid"], r.attrs["i"]) for r in events}
        assert len(seen) == threads_n * events_n

    def test_close_is_idempotent_across_threads(self, tmp_path):
        import threading

        writer = TraceWriter(tmp_path / "trace.jsonl")
        writer.event("once")
        threads = [threading.Thread(target=writer.close) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(read_trace(tmp_path / "trace.jsonl")) == 2
