"""Property-based tests for the ReliabilityResult merge monoid.

:meth:`ReliabilityResult.merge` is the algebra the parallel runner's
worker-count independence rests on: shards must combine associatively
and commutatively, with the empty shard as identity, and survive a JSON
round-trip (the checkpoint format) unchanged.  Hypothesis drives the
shard generator; a fallback seeded-randomized loop is unnecessary since
the CI image ships hypothesis.
"""

import json
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MergeError
from repro.reliability.results import ReliabilityResult, SparingStats, StratumStats

#: Shared shard metadata — merge requires it to match, so strategies fix
#: it and vary only the per-shard samples.
META = dict(
    scheme_name="3DP + TSV-Swap",
    stratum_weight=0.25,
    lifetime_hours=61320.0,
    min_faults=2,
)

MODES = ["column+subarray", "subarray+subarray", "column+column+tsv"]


@st.composite
def shards(draw):
    """One plausible shard: failures <= trials, one time per failure."""
    trials = draw(st.integers(min_value=1, max_value=500))
    failures = draw(st.integers(min_value=0, max_value=min(trials, 30)))
    times = draw(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=META["lifetime_hours"],
                allow_nan=False,
            ),
            min_size=failures,
            max_size=failures,
        )
    )
    modes = Counter(
        dict(
            zip(
                MODES,
                draw(
                    st.lists(
                        st.integers(0, 10),
                        min_size=len(MODES),
                        max_size=len(MODES),
                    )
                ),
            )
        )
    )
    modes = Counter({k: v for k, v in modes.items() if v})
    sparing = None
    if draw(st.booleans()):
        sparing = SparingStats(
            rows_per_faulty_bank=draw(st.lists(st.integers(1, 70000),
                                               max_size=8)),
            failed_banks_per_trial=draw(st.lists(st.integers(1, 4),
                                                 max_size=4)),
        )
    return ReliabilityResult(
        trials=trials,
        failures=failures,
        failure_times_hours=times,
        failure_modes=modes,
        sparing=sparing,
        **META,
    )


class TestMergeMonoid:
    @settings(max_examples=80, deadline=None)
    @given(shards(), shards())
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=60, deadline=None)
    @given(shards(), shards(), shards())
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=60, deadline=None)
    @given(shards())
    def test_identity(self, a):
        e = ReliabilityResult.identity()
        assert a.merge(e) == a.canonical()
        assert e.merge(a) == a.canonical()
        assert e.merge(ReliabilityResult.identity()).is_identity

    @settings(max_examples=60, deadline=None)
    @given(st.lists(shards(), max_size=6))
    def test_merge_all_counts(self, shard_list):
        merged = ReliabilityResult.merge_all(shard_list)
        assert merged.trials == sum(s.trials for s in shard_list)
        assert merged.failures == sum(s.failures for s in shard_list)
        assert len(merged.failure_times_hours) == sum(
            len(s.failure_times_hours) for s in shard_list
        )
        assert merged.failure_modes == sum(
            (s.failure_modes for s in shard_list), Counter()
        )

    @settings(max_examples=60, deadline=None)
    @given(shards(), shards())
    def test_estimator_is_trial_weighted_mean(self, a, b):
        merged = a.merge(b)
        expected = (
            META["stratum_weight"]
            * (a.failures + b.failures)
            / (a.trials + b.trials)
        )
        assert merged.failure_probability == pytest.approx(expected)

    @settings(max_examples=40, deadline=None)
    @given(shards())
    def test_incompatible_metadata_rejected(self, a):
        other = ReliabilityResult(
            scheme_name=META["scheme_name"],
            trials=10,
            failures=0,
            stratum_weight=META["stratum_weight"] / 2,
            lifetime_hours=META["lifetime_hours"],
            min_faults=META["min_faults"],
        )
        with pytest.raises(MergeError):
            a.merge(other)


class TestSerialization:
    @settings(max_examples=80, deadline=None)
    @given(shards())
    def test_json_round_trip(self, a):
        # Through actual JSON text, as the checkpoint file does.
        payload = json.loads(json.dumps(a.to_dict()))
        assert ReliabilityResult.from_dict(payload) == a

    @settings(max_examples=40, deadline=None)
    @given(shards(), shards())
    def test_round_trip_then_merge(self, a, b):
        restored = ReliabilityResult.from_dict(a.to_dict())
        assert restored.merge(b) == a.merge(b)

    def test_sparing_round_trip(self):
        stats = SparingStats(
            rows_per_faulty_bank=[1, 8192, 65536],
            failed_banks_per_trial=[1, 2],
        )
        assert SparingStats.from_dict(stats.to_dict()) == stats


class TestSerializedOrderStability:
    """REPRO008 regression: ``to_dict`` used to emit ``failure_modes``
    in Counter insertion order, which depends on merge order — two
    worker counts produced equal Counters but different JSON bytes."""

    def _shard(self, modes):
        return ReliabilityResult(
            scheme_name="citadel",
            trials=100,
            failures=sum(modes.values()),
            lifetime_hours=61320.0,
            failure_times_hours=[],
            failure_modes=Counter(modes),
        )

    def test_merge_order_does_not_change_serialized_bytes(self):
        a = self._shard({"tsv": 2})
        b = self._shard({"bank": 1, "channel": 3})
        ab = json.dumps(a.merge(b).to_dict(), sort_keys=False)
        ba = json.dumps(b.merge(a).to_dict(), sort_keys=False)
        assert ab == ba

    def test_failure_modes_serialized_sorted(self):
        result = self._shard({"zeta": 1, "alpha": 2, "mid": 3})
        assert list(result.to_dict()["failure_modes"]) == [
            "alpha",
            "mid",
            "zeta",
        ]


# ---------------------------------------------------------------------- #
# Stratified / importance shards (heterogeneous stratum mixes)
# ---------------------------------------------------------------------- #
#: Fixed stratum table shared by every generated shard — merge requires
#: bitwise weight/bound equality per key, so strategies vary only the
#: tallies and which subset of strata a shard carries (a tiny trailing
#: shard's allocation can skip rare strata entirely).
STRATUM_TABLE = {
    "n=2": (0.07, 1.0),
    "n=3": (0.012, 1.0),
    "n>=4": (0.0017, 1.0),
    "is:n>=2": (0.09, 2.0),
}


@st.composite
def stratum_stats(draw, key):
    weight, bound = STRATUM_TABLE[key]
    trials = draw(st.integers(min_value=0, max_value=300))
    failures = draw(st.integers(min_value=0, max_value=min(trials, 20)))
    weights = draw(
        st.lists(
            st.floats(min_value=1e-6, max_value=bound, allow_nan=False),
            min_size=failures,
            max_size=failures,
        )
    )
    return StratumStats(
        key=key,
        weight=weight,
        bound=bound,
        trials=trials,
        failures=failures,
        failure_weights=weights,
    )


@st.composite
def strata_shards(draw):
    """One stratified shard over a nonempty subset of the stratum table,
    with consistent top-level tallies (trials/failures sum the strata)."""
    keys = draw(
        st.lists(
            st.sampled_from(sorted(STRATUM_TABLE)),
            min_size=1,
            max_size=len(STRATUM_TABLE),
            unique=True,
        )
    )
    strata = [draw(stratum_stats(key)) for key in keys]
    failures = sum(s.failures for s in strata)
    times = draw(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=META["lifetime_hours"],
                allow_nan=False,
            ),
            min_size=failures,
            max_size=failures,
        )
    )
    return ReliabilityResult(
        scheme_name=META["scheme_name"],
        trials=sum(s.trials for s in strata),
        failures=failures,
        stratum_weight=1.0,
        lifetime_hours=META["lifetime_hours"],
        min_faults=META["min_faults"],
        failure_times_hours=times,
        strata=strata,
    )


class TestHeterogeneousStrataMerge:
    """Satellite of the sampling layer: shards carrying *different*
    stratum mixes must still form a commutative monoid (key-union merge)
    and serialize byte-identically whatever order they merged in."""

    @settings(max_examples=80, deadline=None)
    @given(strata_shards(), strata_shards())
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=60, deadline=None)
    @given(strata_shards(), strata_shards(), strata_shards())
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=40, deadline=None)
    @given(strata_shards())
    def test_identity(self, a):
        e = ReliabilityResult.identity()
        assert a.merge(e) == a.canonical()
        assert e.merge(a) == a.canonical()

    @settings(max_examples=40, deadline=None)
    @given(strata_shards(), strata_shards(), strata_shards())
    def test_merge_order_serializes_byte_identically(self, a, b, c):
        left = json.dumps(a.merge(b).merge(c).to_dict(), sort_keys=False)
        right = json.dumps(c.merge(a.merge(b)).to_dict(), sort_keys=False)
        mid = json.dumps(b.merge(c).merge(a).to_dict(), sort_keys=False)
        assert left == right == mid

    @settings(max_examples=60, deadline=None)
    @given(strata_shards(), strata_shards())
    def test_stratum_tallies_union_by_key(self, a, b):
        merged = a.merge(b)
        by_key = {s.key: s for s in merged.strata}
        assert list(by_key) == sorted(by_key)
        for source in (a, b):
            for s in source.strata:
                assert s.key in by_key
        for s in merged.strata:
            contributions = [
                t for src in (a, b) for t in src.strata if t.key == s.key
            ]
            assert s.trials == sum(t.trials for t in contributions)
            assert s.failures == sum(t.failures for t in contributions)
            assert len(s.failure_weights) == s.failures

    @settings(max_examples=40, deadline=None)
    @given(strata_shards(), strata_shards())
    def test_estimator_closed_form(self, a, b):
        merged = a.merge(b)
        if not merged.trials:
            return
        expected = sum(
            s.weight * sum(s.failure_weights) / s.trials
            for s in merged.strata
            if s.trials
        )
        assert merged.failure_probability == pytest.approx(expected)

    @settings(max_examples=40, deadline=None)
    @given(strata_shards())
    def test_json_round_trip(self, a):
        payload = json.loads(json.dumps(a.to_dict()))
        assert ReliabilityResult.from_dict(payload) == a

    @settings(max_examples=20, deadline=None)
    @given(strata_shards(), shards())
    def test_strata_and_naive_shards_do_not_mix(self, a, naive):
        with pytest.raises(MergeError):
            a.merge(
                ReliabilityResult(
                    scheme_name=META["scheme_name"],
                    trials=naive.trials,
                    failures=naive.failures,
                    stratum_weight=1.0,
                    lifetime_hours=META["lifetime_hours"],
                    min_faults=META["min_faults"],
                )
            )

    def test_weight_drift_rejected(self):
        a = StratumStats(key="n=2", weight=0.07, bound=1.0, trials=5)
        b = StratumStats(key="n=2", weight=0.0700001, bound=1.0, trials=5)
        with pytest.raises(MergeError):
            a.merge(b)

    def test_bound_drift_rejected(self):
        a = StratumStats(key="is:n>=2", weight=0.09, bound=2.0, trials=5)
        b = StratumStats(key="is:n>=2", weight=0.09, bound=4.0, trials=5)
        with pytest.raises(MergeError):
            a.merge(b)
