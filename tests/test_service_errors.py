"""Tests for the service error hierarchy and its CLI surface.

Every :class:`ServiceError` subclass must (a) be catchable as both
``ServiceError`` and ``ReproError``, and (b) exit the CLI nonzero with
exactly one ``error:`` line on stderr — the contract scripts rely on
when they drive ``repro submit``/``status``/``fetch``.
"""

import pytest

from repro.cli import main
from repro.errors import (
    JobFailedError,
    JobNotFoundError,
    ReproError,
    ResultNotReadyError,
    ServiceError,
    ServiceUnavailableError,
    SpecError,
    StoreError,
)

SERVICE_ERRORS = [
    SpecError,
    JobNotFoundError,
    ResultNotReadyError,
    JobFailedError,
    StoreError,
    ServiceUnavailableError,
]


class TestHierarchy:
    @pytest.mark.parametrize("cls", SERVICE_ERRORS)
    def test_subclasses_service_and_repro_error(self, cls):
        assert issubclass(cls, ServiceError)
        assert issubclass(cls, ReproError)

    def test_service_error_is_repro_error(self):
        assert issubclass(ServiceError, ReproError)

    @pytest.mark.parametrize("cls", SERVICE_ERRORS)
    def test_distinct_classes_for_wire_contract(self, cls):
        # The HTTP layer serializes errors by class name; names must be
        # unique across the hierarchy for the client to reconstruct them.
        names = [c.__name__ for c in SERVICE_ERRORS]
        assert names.count(cls.__name__) == 1


def one_error_line(capsys):
    captured = capsys.readouterr()
    lines = [line for line in captured.err.splitlines() if line]
    assert len(lines) == 1, captured.err
    assert lines[0].startswith("error: ")
    return lines[0], captured.out


class TestCLISurface:
    def test_invalid_spec_exits_nonzero(self, capsys):
        # trials=0 passes argparse but fails CampaignSpec validation.
        rc = main(["submit", "--trials", "0"])
        assert rc == 1
        line, out = one_error_line(capsys)
        assert "trials" in line
        assert out == ""  # stdout stays a clean result channel

    def test_unreachable_service_exits_nonzero(self, capsys):
        # Port 1 is never bound: connection refused, no 30s stall.
        rc = main([
            "fetch", "--url", "http://127.0.0.1:1", "--job", "j000001-abc",
        ])
        assert rc == 1
        line, out = one_error_line(capsys)
        assert "cannot reach campaign service" in line
        assert out == ""

    def test_status_against_dead_service_exits_nonzero(self, capsys):
        rc = main(["status", "--url", "http://127.0.0.1:1"])
        assert rc == 1
        line, _ = one_error_line(capsys)
        assert "cannot reach campaign service" in line

    @pytest.mark.parametrize(
        "cls,message",
        [
            (JobNotFoundError, "unknown job id 'x'"),
            (ResultNotReadyError, "job x is running"),
            (JobFailedError, "job x is failed: boom"),
            (StoreError, "result evicted"),
        ],
    )
    def test_client_errors_render_one_line(
        self, cls, message, capsys, monkeypatch
    ):
        """Whatever error class the client raises, the CLI prints one
        ``error:`` line carrying its message and exits 1."""
        import repro.service.client as client_mod

        class ExplodingClient:
            def __init__(self, *args, **kwargs):
                pass

            def __getattr__(self, name):
                def raiser(*args, **kwargs):
                    raise cls(message)

                return raiser

        monkeypatch.setattr(client_mod, "ServiceClient", ExplodingClient)
        rc = main(["fetch", "--job", "x"])
        assert rc == 1
        line, _ = one_error_line(capsys)
        assert line == f"error: {message}"
