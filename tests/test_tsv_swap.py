"""Tests for TSV-SWAP (§V): stand-by pool management, TRR redirection and
the reliability-engine filter."""

import pytest

from repro.core.tsv_swap import TSVSwapController, apply_tsv_swap
from repro.errors import CapacityError, ConfigurationError
from repro.faults.types import (
    Permanence,
    make_addr_tsv_fault,
    make_bit_fault,
    make_data_tsv_fault,
)
from repro.stack.geometry import StackGeometry
from repro.stack.tsv import TSVClass, TSVId, standby_dtsv_indices


@pytest.fixture
def geom():
    return StackGeometry()


class TestStandbyPool:
    def test_paper_standby_indices(self, geom):
        """§V-C1: DTSV-0, DTSV-64, DTSV-128, DTSV-192."""
        assert standby_dtsv_indices(geom, 4) == [0, 64, 128, 192]

    def test_count_must_divide_pool(self, geom):
        with pytest.raises(ConfigurationError):
            standby_dtsv_indices(geom, 3)

    def test_metadata_cost_is_8_bits(self, geom):
        """4 stand-by DTSVs x burst 2 = the 8 swap-data bits of Figure 6."""
        controller = TSVSwapController(geom)
        assert controller.metadata_bits_used() == 8


class TestRepair:
    def test_repair_data_tsv(self, geom):
        c = TSVSwapController(geom)
        tsv = TSVId(channel=0, tsv_class=TSVClass.DATA, index=7)
        entry = c.repair(tsv)
        assert entry.standby_index == 0  # first stand-by used
        assert c.redirect(tsv) == 0
        assert c.state(0).repairs_left == 3

    def test_repair_addr_tsv(self, geom):
        c = TSVSwapController(geom)
        tsv = TSVId(channel=2, tsv_class=TSVClass.ADDRESS, index=5)
        assert c.repair(tsv).standby_index == 0

    def test_channels_have_independent_pools(self, geom):
        c = TSVSwapController(geom)
        for ch in range(geom.channels):
            c.repair(TSVId(channel=ch, tsv_class=TSVClass.DATA, index=9))
        assert all(c.state(ch).repairs_used == 1 for ch in range(geom.channels))

    def test_pool_exhaustion_raises(self, geom):
        c = TSVSwapController(geom)
        for i in range(4):
            c.repair(TSVId(channel=0, tsv_class=TSVClass.DATA, index=10 + i))
        with pytest.raises(CapacityError):
            c.repair(TSVId(channel=0, tsv_class=TSVClass.DATA, index=20))
        assert c.try_repair(
            TSVId(channel=0, tsv_class=TSVClass.DATA, index=21)
        ) is None
        # Other channels unaffected.
        assert c.try_repair(
            TSVId(channel=1, tsv_class=TSVClass.DATA, index=20)
        ) is not None

    def test_faulty_standby_tsv_is_free_repair(self, geom):
        """A stand-by TSV's payload is already replicated in metadata, so
        its own failure consumes only itself."""
        c = TSVSwapController(geom)
        c.repair(TSVId(channel=0, tsv_class=TSVClass.DATA, index=64))
        state = c.state(0)
        assert 64 not in state.standby_pool
        assert state.repairs_left == 3
        # The remaining pool still serves other faults.
        entry = c.repair(TSVId(channel=0, tsv_class=TSVClass.DATA, index=5))
        assert entry.standby_index == 0

    def test_double_repair_rejected(self, geom):
        c = TSVSwapController(geom)
        tsv = TSVId(channel=0, tsv_class=TSVClass.DATA, index=7)
        c.repair(tsv)
        with pytest.raises(ConfigurationError):
            c.repair(tsv)

    def test_validates_tsv(self, geom):
        c = TSVSwapController(geom)
        with pytest.raises(ConfigurationError):
            c.repair(TSVId(channel=0, tsv_class=TSVClass.DATA, index=999))
        with pytest.raises(ConfigurationError):
            c.repair(TSVId(channel=99, tsv_class=TSVClass.DATA, index=0))

    def test_fixed_rows_are_bit_inverse(self, geom):
        lo, hi = TSVSwapController(geom).fixed_row_addresses()
        assert lo ^ hi == geom.rows_per_bank - 1


class TestReliabilityFilter:
    def test_absorbs_up_to_capacity(self, geom):
        faults = [
            make_data_tsv_fault(geom, 0, 10 + i).at_time(float(i)) for i in range(4)
        ]
        visible, controller = apply_tsv_swap(faults, geom)
        assert visible == []
        assert controller.state(0).repairs_used == 4

    def test_overflow_stays_visible(self, geom):
        faults = [
            make_data_tsv_fault(geom, 0, 10 + i).at_time(float(i)) for i in range(6)
        ]
        visible, _ = apply_tsv_swap(faults, geom)
        assert len(visible) == 2
        # The *latest* faults overflow (arrival order is honored).
        assert {f.tsv_index for f in visible} == {14, 15}

    def test_dram_faults_pass_through(self, geom):
        dram = make_bit_fault(geom, 0, 0, 0, 0, Permanence.PERMANENT)
        tsv = make_data_tsv_fault(geom, 0, 3)
        visible, _ = apply_tsv_swap([dram, tsv], geom)
        assert visible == [dram]

    def test_addr_tsv_absorbed(self, geom):
        visible, _ = apply_tsv_swap([make_addr_tsv_fault(geom, 1, 2)], geom)
        assert visible == []

    def test_custom_capacity(self, geom):
        faults = [make_data_tsv_fault(geom, 0, 10 + i) for i in range(3)]
        visible, _ = apply_tsv_swap(faults, geom, standby_count=2)
        assert len(visible) == 1
