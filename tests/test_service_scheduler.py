"""Tests for the campaign scheduler.

Uses the injectable ``executor`` hook so lifecycle, dedupe, retry,
cancellation, and fair-share behaviour can be exercised without running
Monte-Carlo; the real-executor path (ParallelLifetimeRunner end to end)
is covered in ``test_service_http.py``.  Every test drives a real
worker pool — these are genuine concurrency tests, kept fast by
zero-backoff retries and event-gated stub executors.
"""

import threading

import pytest

from repro.errors import (
    JobFailedError,
    JobNotFoundError,
    ReproError,
    ResultNotReadyError,
    ServiceError,
    StoreError,
)
from repro.reliability.parallel import CampaignReport
from repro.reliability.results import ReliabilityResult
from repro.service.jobs import CampaignSpec, JobState
from repro.service.scheduler import CampaignScheduler
from repro.service.store import ResultStore

WAIT_S = 10.0  # generous per-event timeout; tests normally finish in ms


def make_spec(seed=0, **overrides):
    overrides.setdefault("scheme", "secded")
    overrides.setdefault("trials", 500)
    return CampaignSpec(seed=seed, **overrides)


def make_result(spec):
    return ReliabilityResult(
        scheme_name=spec.scheme,
        trials=spec.effective_trials,
        failures=spec.seed % 5,
        lifetime_hours=61320.0,
        failure_times_hours=[50.0 * (i + 1) for i in range(spec.seed % 5)],
    )


class StubExecutor:
    """Scriptable executor: records calls, can block, fail, or crash."""

    def __init__(self, fail_attempts=0, crashed_shards=0, gate=None):
        self.fail_attempts = fail_attempts
        self.crashed_shards = crashed_shards
        self.gate = gate  # threading.Event the executor waits on
        self.calls = []
        self.started = threading.Event()
        self._lock = threading.Lock()

    def __call__(self, spec, workers, cancel_event):
        with self._lock:
            self.calls.append((spec.spec_hash(), workers))
            attempt = len(self.calls)
        self.started.set()
        if self.gate is not None:
            # Simulate a long campaign that polls its cancel hook.
            while not self.gate.wait(timeout=0.01):
                if cancel_event.is_set():
                    report = CampaignReport(planned_shards=1, cancelled=True)
                    return ReliabilityResult.identity(), report
        if attempt <= self.fail_attempts:
            if self.crashed_shards:
                report = CampaignReport(
                    planned_shards=4,
                    merged_shards=4 - self.crashed_shards,
                    failed_shards=list(range(self.crashed_shards)),
                )
                return make_result(spec), report
            raise ReproError(f"injected failure on attempt {attempt}")
        report = CampaignReport(planned_shards=1, merged_shards=1)
        return make_result(spec), report


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def make_scheduler(store, executor, **kwargs):
    kwargs.setdefault("slots", 2)
    kwargs.setdefault("retry_backoff_s", 0.0)
    return CampaignScheduler(store, executor=executor, **kwargs)


def wait_terminal(scheduler, job, timeout_s=WAIT_S):
    deadline_event = threading.Event()
    for _ in range(int(timeout_s / 0.01)):
        if job.state.terminal:
            return job
        deadline_event.wait(timeout=0.01)
    raise AssertionError(f"job {job.id} stuck in {job.state}")


class TestLifecycle:
    def test_submit_run_done(self, store):
        executor = StubExecutor()
        scheduler = make_scheduler(store, executor).start()
        try:
            spec = make_spec(seed=1)
            job = scheduler.submit(spec)
            wait_terminal(scheduler, job)
            assert job.state is JobState.DONE
            assert job.cache_hit is False
            assert job.attempts == 1
            assert store.contains(spec)
            assert scheduler.result(job.id).to_dict() == (
                make_result(spec).to_dict()
            )
        finally:
            scheduler.shutdown()

    def test_result_not_ready_while_queued(self, store):
        gate = threading.Event()
        executor = StubExecutor(gate=gate)
        scheduler = make_scheduler(store, executor, slots=1).start()
        try:
            job = scheduler.submit(make_spec(seed=1))
            executor.started.wait(WAIT_S)
            with pytest.raises(ResultNotReadyError):
                scheduler.result(job.id)
        finally:
            gate.set()
            scheduler.shutdown()

    def test_unknown_job_rejected(self, store):
        scheduler = make_scheduler(store, StubExecutor())
        with pytest.raises(JobNotFoundError):
            scheduler.job("nope")
        with pytest.raises(JobNotFoundError):
            scheduler.result("nope")
        scheduler.shutdown()

    def test_submit_after_shutdown_rejected(self, store):
        scheduler = make_scheduler(store, StubExecutor()).start()
        scheduler.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            scheduler.submit(make_spec())

    def test_evicted_result_raises_store_error(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_disk_entries=1)
        scheduler = make_scheduler(store, StubExecutor()).start()
        try:
            first = scheduler.submit(make_spec(seed=1))
            wait_terminal(scheduler, first)
            second = scheduler.submit(make_spec(seed=2))
            wait_terminal(scheduler, second)
            # seed=1's entry was evicted by seed=2's.
            with pytest.raises(StoreError, match="evicted"):
                scheduler.result(first.id)
        finally:
            scheduler.shutdown()

    def test_counts_tally_states(self, store):
        scheduler = make_scheduler(store, StubExecutor()).start()
        try:
            job = scheduler.submit(make_spec(seed=1))
            wait_terminal(scheduler, job)
            counts = scheduler.counts()
            assert counts["done"] == 1
            assert sum(counts.values()) == 1
        finally:
            scheduler.shutdown()


class TestDedupe:
    def test_resubmit_is_store_hit_without_reexecution(self, store):
        executor = StubExecutor()
        scheduler = make_scheduler(store, executor).start()
        try:
            spec = make_spec(seed=1)
            first = scheduler.submit(spec)
            wait_terminal(scheduler, first)
            second = scheduler.submit(spec)
            assert second.state is JobState.DONE  # instantly, no queueing
            assert second.cache_hit is True
            assert len(executor.calls) == 1
            assert scheduler.result(second.id).to_dict() == (
                scheduler.result(first.id).to_dict()
            )
            counters = scheduler.metrics.to_dict()["counters"]
            assert counters["service/cache_hits"] == 1
            assert counters["service/cache_misses"] == 1
        finally:
            scheduler.shutdown()

    def test_concurrent_identical_submissions_execute_once(self, store):
        """The satellite requirement: two simultaneous submissions of
        the same spec yield ONE execution and one cache hit, and both
        jobs serve byte-identical results."""
        gate = threading.Event()
        executor = StubExecutor(gate=gate)
        scheduler = make_scheduler(store, executor).start()
        try:
            spec = make_spec(seed=7)
            primary = scheduler.submit(spec)
            executor.started.wait(WAIT_S)  # primary is mid-execution
            follower = scheduler.submit(spec)
            assert follower.state is JobState.QUEUED
            gate.set()
            wait_terminal(scheduler, primary)
            wait_terminal(scheduler, follower)
            assert primary.state is JobState.DONE
            assert follower.state is JobState.DONE
            assert primary.cache_hit is False
            assert follower.cache_hit is True
            assert len(executor.calls) == 1  # exactly one execution
            assert scheduler.result(primary.id).to_dict() == (
                scheduler.result(follower.id).to_dict()
            )
            counters = scheduler.metrics.to_dict()["counters"]
            assert counters["service/dedup_joins"] == 1
            assert counters["service/cache_hits"] == 1
        finally:
            scheduler.shutdown()

    def test_different_specs_both_execute(self, store):
        executor = StubExecutor()
        scheduler = make_scheduler(store, executor).start()
        try:
            a = scheduler.submit(make_spec(seed=1))
            b = scheduler.submit(make_spec(seed=2))
            wait_terminal(scheduler, a)
            wait_terminal(scheduler, b)
            assert len(executor.calls) == 2
        finally:
            scheduler.shutdown()

    def test_follower_promoted_when_primary_fails(self, store):
        """A follower must not be stranded by its primary's failure —
        it gets promoted and runs on its own retry budget."""
        gate = threading.Event()

        class FlakyExecutor(StubExecutor):
            def __call__(self, executor_spec, workers, cancel_event):
                with self._lock:
                    self.calls.append((executor_spec.spec_hash(), workers))
                    attempt = len(self.calls)
                self.started.set()
                if attempt == 1:
                    gate.wait(WAIT_S)
                    raise ReproError("primary dies")
                report = CampaignReport(planned_shards=1, merged_shards=1)
                return make_result(executor_spec), report

        executor = FlakyExecutor()
        scheduler = make_scheduler(store, executor, slots=1).start()
        try:
            spec = make_spec(seed=3)
            primary = scheduler.submit(spec, max_retries=0)
            executor.started.wait(WAIT_S)
            follower = scheduler.submit(spec, max_retries=0)
            gate.set()
            wait_terminal(scheduler, primary)
            wait_terminal(scheduler, follower)
            assert primary.state is JobState.FAILED
            assert follower.state is JobState.DONE
            assert follower.cache_hit is False  # it ran for real
            assert len(executor.calls) == 2
        finally:
            scheduler.shutdown()


class TestRetries:
    def test_retry_then_success(self, store):
        executor = StubExecutor(fail_attempts=2)
        scheduler = make_scheduler(store, executor).start()
        try:
            job = scheduler.submit(make_spec(seed=1), max_retries=2)
            wait_terminal(scheduler, job)
            assert job.state is JobState.DONE
            assert job.attempts == 3
            counters = scheduler.metrics.to_dict()["counters"]
            assert counters["service/jobs_retried"] == 2
        finally:
            scheduler.shutdown()

    def test_crashed_shards_trigger_retry(self, store):
        """An incomplete campaign (crashed shards) is retried rather
        than filed: the store only ever holds complete campaigns."""
        executor = StubExecutor(fail_attempts=1, crashed_shards=2)
        scheduler = make_scheduler(store, executor).start()
        try:
            spec = make_spec(seed=1)
            job = scheduler.submit(spec, max_retries=1)
            wait_terminal(scheduler, job)
            assert job.state is JobState.DONE
            assert job.attempts == 2
        finally:
            scheduler.shutdown()

    def test_exhausted_retries_fail_the_job(self, store):
        executor = StubExecutor(fail_attempts=99)
        scheduler = make_scheduler(store, executor).start()
        try:
            spec = make_spec(seed=1)
            job = scheduler.submit(spec, max_retries=1)
            wait_terminal(scheduler, job)
            assert job.state is JobState.FAILED
            assert job.attempts == 2
            assert "injected failure" in job.error
            assert not store.contains(spec)
            with pytest.raises(JobFailedError, match="failed"):
                scheduler.result(job.id)
            counters = scheduler.metrics.to_dict()["counters"]
            assert counters["service/jobs_failed"] == 1
        finally:
            scheduler.shutdown()


class TestCancellation:
    def test_cancel_queued_job(self, store):
        gate = threading.Event()
        executor = StubExecutor(gate=gate)
        scheduler = make_scheduler(store, executor, slots=1).start()
        try:
            blocker = scheduler.submit(make_spec(seed=1))
            executor.started.wait(WAIT_S)
            queued = scheduler.submit(make_spec(seed=2))
            cancelled = scheduler.cancel(queued.id)
            assert cancelled.state is JobState.CANCELLED
            gate.set()
            wait_terminal(scheduler, blocker)
            # The cancelled job never reached the executor.
            assert len(executor.calls) == 1
            with pytest.raises(JobFailedError, match="cancelled"):
                scheduler.result(queued.id)
        finally:
            gate.set()
            scheduler.shutdown()

    def test_cancel_running_job_is_cooperative(self, store):
        gate = threading.Event()  # never set: only cancel can end it
        executor = StubExecutor(gate=gate)
        scheduler = make_scheduler(store, executor, slots=1).start()
        try:
            spec = make_spec(seed=1)
            job = scheduler.submit(spec)
            executor.started.wait(WAIT_S)
            scheduler.cancel(job.id)
            wait_terminal(scheduler, job)
            assert job.state is JobState.CANCELLED
            assert not store.contains(spec)  # partial result never filed
            counters = scheduler.metrics.to_dict()["counters"]
            assert counters["service/jobs_cancelled"] == 1
        finally:
            scheduler.shutdown()

    def test_cancel_is_idempotent_on_terminal_jobs(self, store):
        scheduler = make_scheduler(store, StubExecutor()).start()
        try:
            job = scheduler.submit(make_spec(seed=1))
            wait_terminal(scheduler, job)
            assert scheduler.cancel(job.id).state is JobState.DONE
        finally:
            scheduler.shutdown()

    def test_cancelled_primary_promotes_follower(self, store):
        gate = threading.Event()
        executor = StubExecutor(gate=gate)
        scheduler = make_scheduler(store, executor, slots=1).start()
        try:
            blocker = scheduler.submit(make_spec(seed=1))
            executor.started.wait(WAIT_S)
            spec = make_spec(seed=2)
            primary = scheduler.submit(spec)  # queued behind blocker
            follower = scheduler.submit(spec)
            scheduler.cancel(primary.id)
            assert primary.state is JobState.CANCELLED
            gate.set()
            wait_terminal(scheduler, blocker)
            wait_terminal(scheduler, follower)
            assert follower.state is JobState.DONE
        finally:
            gate.set()
            scheduler.shutdown()


class TestScheduling:
    def test_priority_order(self, store):
        gate = threading.Event()
        executor = StubExecutor(gate=gate)
        scheduler = make_scheduler(store, executor, slots=1).start()
        try:
            blocker = scheduler.submit(make_spec(seed=0))
            executor.started.wait(WAIT_S)
            low = scheduler.submit(make_spec(seed=1), priority=0)
            high = scheduler.submit(make_spec(seed=2), priority=10)
            gate.set()
            for job in (blocker, low, high):
                wait_terminal(scheduler, job)
            order = [call[0] for call in executor.calls]
            assert order.index(high.spec_hash) < order.index(low.spec_hash)
        finally:
            scheduler.shutdown()

    def test_fair_share_process_budget(self, store):
        """Two concurrent jobs on a budget of 8 get 4 workers each,
        capped at what each job asked for."""
        gate = threading.Event()
        executor = StubExecutor(gate=gate)
        scheduler = make_scheduler(
            store, executor, slots=2, process_budget=8
        ).start()
        try:
            a = scheduler.submit(make_spec(seed=1), workers=8)
            b = scheduler.submit(make_spec(seed=2), workers=2)
            for _ in range(int(WAIT_S / 0.01)):
                if len(executor.calls) >= 2:
                    break
                executor.started.wait(timeout=0.01)
            gate.set()
            wait_terminal(scheduler, a)
            wait_terminal(scheduler, b)
            allotted = dict(executor.calls)
            assert allotted[a.spec_hash] <= 8
            assert allotted[b.spec_hash] <= 2  # never above its request
            assert all(workers >= 1 for workers in allotted.values())
        finally:
            scheduler.shutdown()

    def test_graceful_drain_finishes_queued_work(self, store):
        executor = StubExecutor()
        scheduler = make_scheduler(store, executor, slots=1).start()
        jobs = [scheduler.submit(make_spec(seed=i)) for i in range(4)]
        scheduler.shutdown(drain=True)
        assert all(job.state is JobState.DONE for job in jobs)
        assert len(executor.calls) == 4

    def test_no_drain_cancels_queued_and_running_jobs(self, store):
        gate = threading.Event()  # never set: only cancellation ends it
        executor = StubExecutor(gate=gate)
        scheduler = make_scheduler(store, executor, slots=1).start()
        running = scheduler.submit(make_spec(seed=0))
        executor.started.wait(WAIT_S)
        queued = scheduler.submit(make_spec(seed=1))
        scheduler.shutdown(drain=False, cancel_running=True)
        assert running.state is JobState.CANCELLED
        assert queued.state is JobState.CANCELLED
        assert len(executor.calls) == 1  # the queued job never started

    def test_metrics_snapshot_refreshes_gauges(self, store):
        scheduler = make_scheduler(store, StubExecutor()).start()
        try:
            job = scheduler.submit(make_spec(seed=1))
            wait_terminal(scheduler, job)
            snapshot = scheduler.metrics_snapshot().to_dict()
            assert snapshot["gauges"]["service/queue_depth"] == 0.0
            assert "service/job_seconds" in snapshot["histograms"]
            assert snapshot["counters"]["service/jobs_submitted"] == 1
        finally:
            scheduler.shutdown()
