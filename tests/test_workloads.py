"""Tests for workload profiles and synthetic trace generation."""

import pytest

from repro.errors import ConfigurationError
from repro.stack.address import AddressMapper
from repro.stack.geometry import StackGeometry
from repro.workloads.generator import TraceGenerator, rate_mode_traces
from repro.workloads.profiles import (
    PROFILES,
    SUITES,
    WorkloadProfile,
    by_suite,
    memory_intensive,
    suite_of,
)


@pytest.fixture
def geom():
    return StackGeometry()


class TestProfiles:
    def test_all_38_benchmarks_present(self):
        """§III-B: 29 SPEC CPU2006 + 7 PARSEC + 2 BioBench."""
        assert len(PROFILES) == 38
        assert len(by_suite("SPEC-FP")) + len(by_suite("SPEC-INT")) == 29
        assert len(by_suite("PARSEC")) == 7
        assert len(by_suite("BIOBENCH")) == 2

    def test_paper_benchmarks_named(self):
        for name in ("mcf", "lbm", "libquantum", "povray", "tigr", "mummer",
                     "stream", "black", "CactusADM".replace("C", "c", 1)):
            assert name in PROFILES, name

    def test_suite_lookup(self):
        assert suite_of("mcf") == "SPEC-INT"
        assert suite_of("lbm") == "SPEC-FP"
        with pytest.raises(ConfigurationError):
            by_suite("NOPE")

    def test_biobench_is_read_dominated(self):
        """Figure 13's explanation: BioBench mostly reads."""
        for profile in by_suite("BIOBENCH"):
            assert profile.write_fraction <= 0.10

    def test_memory_intensive_contains_the_usual_suspects(self):
        names = {p.name for p in memory_intensive()}
        assert {"mcf", "lbm", "libquantum", "milc"} <= names
        assert "povray" not in names

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile("x", "S", mpki=0, write_fraction=0.1, locality=0.5)
        with pytest.raises(ConfigurationError):
            WorkloadProfile("x", "S", mpki=1, write_fraction=1.5, locality=0.5)
        with pytest.raises(ConfigurationError):
            WorkloadProfile("x", "S", mpki=1, write_fraction=0.1, locality=1.0)
        with pytest.raises(ConfigurationError):
            WorkloadProfile("x", "S", 1, 0.1, 0.5, mlp=0)


class TestTraceGenerator:
    def test_length_and_determinism(self, geom):
        gen_a = TraceGenerator(PROFILES["gcc"], geom, seed=3)
        gen_b = TraceGenerator(PROFILES["gcc"], geom, seed=3)
        a, b = gen_a.generate(500), gen_b.generate(500)
        assert len(a) == 500
        assert a.requests == b.requests

    def test_write_fraction_approximates_profile(self, geom):
        profile = PROFILES["lbm"]
        trace = TraceGenerator(profile, geom, seed=1).generate(20000)
        assert trace.write_fraction == pytest.approx(
            profile.write_fraction, abs=0.08
        )

    def test_mean_gap_tracks_mpki(self, geom):
        profile = PROFILES["mcf"]
        gen = TraceGenerator(profile, geom, seed=2)
        trace = gen.generate(20000)
        mean = trace.total_gap_cycles() / len(trace)
        assert mean == pytest.approx(gen.mean_gap_cycles, rel=0.1)

    def test_intensity_ordering(self, geom):
        heavy = TraceGenerator(PROFILES["mcf"], geom, seed=1).generate(2000)
        light = TraceGenerator(PROFILES["povray"], geom, seed=1).generate(2000)
        assert heavy.total_gap_cycles() < light.total_gap_cycles()

    def test_addresses_within_capacity(self, geom):
        mapper = AddressMapper(geom, stacks=2)
        trace = TraceGenerator(PROFILES["milc"], geom, seed=4).generate(2000)
        for req in trace:
            assert 0 <= mapper.to_address(req.home) < mapper.num_lines

    def test_locality_produces_sequential_runs(self, geom):
        mapper = AddressMapper(geom, stacks=2)
        trace = TraceGenerator(PROFILES["libquantum"], geom, seed=5).generate(4000)
        reads = [mapper.to_address(r.home) for r in trace if not r.is_write]
        sequential = sum(
            1 for a, b in zip(reads, reads[1:]) if b == a + 1
        ) / max(1, len(reads) - 1)
        assert sequential > 0.6  # libquantum streams (locality 0.92)

    def test_writebacks_come_in_runs(self, geom):
        mapper = AddressMapper(geom, stacks=2)
        trace = TraceGenerator(PROFILES["lbm"], geom, seed=6).generate(4000)
        writes = [mapper.to_address(r.home) for r in trace if r.is_write]
        sequential = sum(
            1 for a, b in zip(writes, writes[1:]) if b == a + 1
        ) / max(1, len(writes) - 1)
        assert sequential > 0.6

    def test_mlp_propagated(self, geom):
        trace = TraceGenerator(PROFILES["mcf"], geom, seed=1).generate(10)
        assert trace.mlp == PROFILES["mcf"].mlp

    def test_negative_count_rejected(self, geom):
        with pytest.raises(ConfigurationError):
            TraceGenerator(PROFILES["gcc"], geom).generate(-1)


class TestRateMode:
    def test_eight_copies(self, geom):
        traces = rate_mode_traces("gcc", geom, requests_per_core=100)
        assert len(traces) == 8
        assert all(t.name == "gcc" for t in traces)
        assert all(len(t) == 100 for t in traces)
        # Different cores use different seeds.
        assert traces[0].requests != traces[1].requests

    def test_unknown_benchmark(self, geom):
        with pytest.raises(ConfigurationError):
            rate_mode_traces("nope", geom)
