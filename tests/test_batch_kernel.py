"""Differential tests for the vectorized batch trial kernel.

The batch path (``EngineConfig.batch_trials``) is a *survival filter*: the
array kernels may only claim a trial survives when the exact scalar
simulator would agree, and every other trial is re-run through the scalar
path.  These tests pin both halves of that claim:

* byte-identity of ``ReliabilityResult`` documents between the scalar and
  batch engines for every registered scheme, across worker counts, and
  through checkpoint/resume;
* hypothesis soundness at the kernel boundary — crowded random fault
  sets where a ``survives`` verdict must match a from-scratch scalar
  simulation of the same trial;
* the dispatch contract — silent scalar fallback for observability runs
  and kernel-less models, loud errors for impossible configurations.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.reliability.batch as batch_mod
from repro.core.parity3dp import make_3dp
from repro.errors import ConfigurationError, ContractViolation
from repro.faults.injector import FaultSpec
from repro.faults.rates import FailureRates
from repro.faults.types import FaultKind, Permanence
from repro.reliability import ParallelLifetimeRunner
from repro.reliability.batch import BatchTrialKernel, make_batch_runner
from repro.reliability.montecarlo import EngineConfig, LifetimeSimulator
from repro.schemes import SCHEMES
from repro.stack.geometry import LIFETIME_HOURS, StackGeometry

GEOM = StackGeometry()
#: TSV faults on so TSV-Swap absorption and the TSV kernel rows are hit.
RATES = FailureRates.paper_baseline(tsv_device_fit=1430.0)

np = pytest.importorskip("numpy")


def run_once(scheme, seed, batch, trials=300, **config_kwargs):
    config = EngineConfig(batch_trials=batch, **config_kwargs)
    sim = LifetimeSimulator(GEOM, RATES, SCHEMES[scheme](GEOM), config, seed=seed)
    return sim.run(trials)


def doc(result):
    return json.dumps(result.to_dict(), sort_keys=False)


# ---------------------------------------------------------------------- #
# End-to-end byte identity
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
class TestBatchMatchesScalar:
    def test_result_documents_identical(self, scheme):
        for seed in (7, 99):
            scalar = run_once(scheme, seed, batch=False)
            batch = run_once(scheme, seed, batch=True)
            assert doc(scalar) == doc(batch), (scheme, seed)

    def test_identical_with_mitigations(self, scheme):
        scalar = run_once(
            scheme, 31, batch=False, tsv_swap_standby=4, use_dds=True
        )
        batch = run_once(
            scheme, 31, batch=True, tsv_swap_standby=4, use_dds=True
        )
        assert doc(scalar) == doc(batch), scheme


class TestWorkerByteIdentity:
    def make_runner(self, batch, workers, **kwargs):
        return ParallelLifetimeRunner(
            GEOM,
            RATES,
            make_3dp(GEOM),
            EngineConfig(
                tsv_swap_standby=4, use_dds=True, batch_trials=batch
            ),
            root_seed=42,
            workers=workers,
            shard_size=200,
            **kwargs,
        )

    def test_workers_1_vs_4_with_batch(self):
        a = self.make_runner(batch=True, workers=1).run(trials=800)
        b = self.make_runner(batch=True, workers=4).run(trials=800)
        assert doc(a) == doc(b)

    def test_batch_runner_equals_scalar_runner(self):
        scalar = self.make_runner(batch=False, workers=2).run(trials=800)
        batch = self.make_runner(batch=True, workers=2).run(trials=800)
        assert doc(scalar) == doc(batch)

    def test_resume_with_batch(self, tmp_path):
        cp = tmp_path / "cp.json"
        reference = self.make_runner(batch=True, workers=1).run(trials=800)
        self.make_runner(
            batch=True, workers=1, checkpoint_path=cp
        ).run(trials=800)
        runner = self.make_runner(
            batch=True, workers=1, checkpoint_path=cp, resume=True
        )
        resumed = runner.run(trials=800)
        assert doc(resumed) == doc(reference)
        assert runner.last_report.resumed_shards == 4


# ---------------------------------------------------------------------- #
# Kernel-boundary soundness (hypothesis)
# ---------------------------------------------------------------------- #
#: Small coordinate pools force aliasing — the same trick as the
#: incremental-correction differential.
DIES = st.integers(0, min(3, GEOM.total_dies - 1))
BANKS = st.integers(0, min(2, GEOM.banks_per_die - 1))
ROWS = st.integers(0, 7)
COLS = st.integers(0, min(127, GEOM.row_bits - 1))
PERM = st.sampled_from([Permanence.TRANSIENT, Permanence.PERMANENT])


@st.composite
def crowded_specs(draw):
    kind = draw(
        st.sampled_from(
            ["bit", "word", "row", "column", "subarray", "bank", "dtsv", "atsv"]
        )
    )
    perm = draw(PERM)
    die = draw(DIES)
    bank = draw(BANKS)
    if kind == "bit":
        return FaultSpec(FaultKind.BIT, perm, die, bank, draw(ROWS), draw(COLS))
    if kind == "word":
        word = draw(st.integers(0, min(3, GEOM.row_bits // 32 - 1)))
        return FaultSpec(FaultKind.WORD, perm, die, bank, draw(ROWS), word)
    if kind == "row":
        return FaultSpec(FaultKind.ROW, perm, die, bank, draw(ROWS), 0)
    if kind == "column":
        return FaultSpec(FaultKind.COLUMN, perm, die, bank, draw(COLS), 0)
    if kind == "subarray":
        sub = draw(st.integers(0, min(1, GEOM.subarrays_per_bank - 1)))
        return FaultSpec(FaultKind.SUBARRAY, perm, die, bank, sub, 0)
    if kind == "bank":
        return FaultSpec(FaultKind.BANK, perm, die, bank, 0, 0)
    channel = draw(st.integers(0, min(3, GEOM.channels - 1)))
    if kind == "dtsv":
        idx = draw(st.integers(0, min(7, GEOM.data_tsvs_per_channel - 1)))
        return FaultSpec(
            FaultKind.DATA_TSV, Permanence.PERMANENT, channel, -1, idx, 0
        )
    idx = draw(st.integers(0, min(3, GEOM.addr_tsvs_per_channel - 1)))
    return FaultSpec(
        FaultKind.ADDR_TSV, Permanence.PERMANENT, channel, -1, idx,
        draw(st.integers(0, 1)),
    )


TRIAL_STRATEGY = st.lists(crowded_specs(), min_size=0, max_size=6)
TIME_STRATEGY = st.lists(
    st.floats(min_value=0.0, max_value=LIFETIME_HOURS - 1.0,
              allow_nan=False, allow_infinity=False),
    min_size=6, max_size=6,
)

#: Schemes whose models expose an array-shaped kernel.
KERNEL_SCHEMES = sorted(
    name for name in SCHEMES if SCHEMES[name](GEOM).batch_kernel() is not None
)


def build_single_trial_batch(specs, times, interval):
    """Mirror ``BatchTrialKernel._run_chunk``'s column assembly for one
    trial with no TSV-Swap absorption."""
    from repro.ecc.batch_kernels import TrialBatch

    columns = {
        "permanent": [], "is_tsv": [], "is_bank_kind": [], "die": [],
        "bank": [], "row_base": [], "row_mask": [], "col_base": [],
        "col_mask": [], "epoch": [],
    }
    for spec, t in zip(specs, times):
        rb, rm, cb, cm = spec.footprint_masks(GEOM)
        columns["permanent"].append(spec.permanence is Permanence.PERMANENT)
        columns["is_tsv"].append(spec.kind.is_tsv)
        columns["is_bank_kind"].append(spec.kind is FaultKind.BANK)
        columns["die"].append(spec.die)
        columns["bank"].append(spec.bank)
        columns["row_base"].append(rb)
        columns["row_mask"].append(rm)
        columns["col_base"].append(cb)
        columns["col_mask"].append(cm)
        columns["epoch"].append(int(t // interval))
    return TrialBatch(GEOM, [len(specs)], **columns)


@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
class TestKernelSoundness:
    """A ``survives`` verdict must never contradict the scalar engine."""

    @settings(max_examples=40, deadline=None)
    @given(specs=TRIAL_STRATEGY, raw_times=TIME_STRATEGY)
    def test_survives_implies_scalar_survival(self, scheme, specs, raw_times):
        for use_dds in (False, True):
            config = EngineConfig(use_dds=use_dds)
            sim = LifetimeSimulator(
                GEOM, RATES, SCHEMES[scheme](GEOM), config, seed=0
            )
            times = sorted(raw_times[: len(specs)])
            batch = build_single_trial_batch(
                specs, times, config.scrub_interval_hours
            )
            kernel = sim.model.batch_kernel()
            verdict = kernel.survives(batch)
            assert verdict.shape == (1,)
            if bool(verdict[0]):
                faults = [
                    spec.build(GEOM, t) for spec, t in zip(specs, times)
                ]
                assert sim._simulate(faults, None, None, None) is None, (
                    scheme, use_dds, specs, times
                )

    def test_empty_trial_survives(self, scheme):
        config = EngineConfig()
        batch = build_single_trial_batch([], [], config.scrub_interval_hours)
        kernel = SCHEMES[scheme](GEOM).batch_kernel()
        assert bool(kernel.survives(batch)[0])


# ---------------------------------------------------------------------- #
# Dispatch contract
# ---------------------------------------------------------------------- #
class TestDispatch:
    def make_sim(self, **config_kwargs):
        config_kwargs.setdefault("batch_trials", True)
        config = EngineConfig(
            tsv_swap_standby=4, use_dds=True, **config_kwargs
        )
        return LifetimeSimulator(
            GEOM, RATES, make_3dp(GEOM), config, seed=302
        )

    def test_runner_used_and_counts_trials(self):
        sim = self.make_sim()
        runner = make_batch_runner(sim)
        assert isinstance(runner, BatchTrialKernel)
        result = runner.run(400, 2, None)
        assert result.trials == 400
        assert runner.fast_trials > 0
        assert runner.fast_trials + runner.fallback_trials == 400

    def test_scalar_flag_off_returns_none(self):
        assert make_batch_runner(self.make_sim(batch_trials=False)) is None

    def test_observability_forces_scalar_fallback(self):
        sim = self.make_sim(collect_metrics=True)
        assert make_batch_runner(sim) is None
        # ... and the end-to-end run still matches the scalar engine.
        with_batch_flag = self.make_sim(collect_metrics=True).run(200)
        scalar = self.make_sim(
            batch_trials=False, collect_metrics=True
        ).run(200)
        assert doc(with_batch_flag) == doc(scalar)

    def test_kernelless_model_falls_back(self):
        config = EngineConfig(batch_trials=True)
        sim = LifetimeSimulator(
            GEOM, RATES, SCHEMES["bch"](GEOM), config, seed=1
        )
        assert sim.model.batch_kernel() is None
        assert make_batch_runner(sim) is None

    def test_batch_requires_naive_sampling(self):
        with pytest.raises(ContractViolation):
            EngineConfig(batch_trials=True, sampling="stratified")

    def test_missing_numpy_is_loud(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "np", None)
        with pytest.raises(ConfigurationError):
            make_batch_runner(self.make_sim())
