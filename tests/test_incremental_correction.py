"""Differential tests for the incremental correctability protocol.

Every registered scheme must answer ``observe()`` exactly as a fresh
model answers ``is_uncorrectable()`` on the same prefix, for random
fault sequences — and ``rebuild()`` (the scrub/DDS path) must leave the
kernel answering as if the surviving set had been observed from
scratch.  The strategies deliberately squeeze faults into a few dies,
banks and rows so that pair predicates, occupancy indexes and the 3DP
peel cache are all exercised, not just the lone-fault fast paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parity3dp import ParityND, make_3dp
from repro.faults.types import (
    Permanence,
    make_addr_tsv_fault,
    make_bank_fault,
    make_bit_fault,
    make_column_fault,
    make_data_tsv_fault,
    make_row_fault,
    make_subarray_fault,
    make_word_fault,
)
from repro.schemes import SCHEMES
from repro.stack.geometry import StackGeometry
from repro.telemetry.registry import MetricsRegistry

GEOM = StackGeometry()

#: Small coordinate pools force overlaps: with the full address space the
#: chance of two random faults aliasing is negligible and the pairwise
#: branches would never run.
DIES = st.integers(0, min(3, GEOM.total_dies - 1))
ALL_DIES = st.integers(0, GEOM.total_dies - 1)
BANKS = st.integers(0, min(2, GEOM.banks_per_die - 1))
ROWS = st.integers(0, 7)
COLS = st.integers(0, min(127, GEOM.row_bits - 1))
PERM = st.sampled_from([Permanence.TRANSIENT, Permanence.PERMANENT])


@st.composite
def crowded_faults(draw):
    """One random fault drawn from a deliberately small address pool."""
    kind = draw(
        st.sampled_from(
            ["bit", "word", "row", "column", "subarray", "bank", "dtsv", "atsv"]
        )
    )
    perm = draw(PERM)
    die = draw(DIES if kind in ("bit", "word", "row") else ALL_DIES)
    bank = draw(BANKS)
    row = draw(ROWS)
    if kind == "bit":
        return make_bit_fault(GEOM, die, bank, row, draw(COLS), perm)
    if kind == "word":
        word = draw(st.integers(0, min(3, GEOM.row_bits // 32 - 1)))
        return make_word_fault(GEOM, die, bank, row, word, perm)
    if kind == "row":
        return make_row_fault(GEOM, die, bank, row, perm)
    if kind == "column":
        return make_column_fault(GEOM, die, bank, draw(COLS), perm)
    if kind == "subarray":
        sub = draw(st.integers(0, min(1, GEOM.subarrays_per_bank - 1)))
        return make_subarray_fault(GEOM, die, bank, sub, perm)
    if kind == "bank":
        return make_bank_fault(GEOM, die, bank, perm)
    channel = draw(st.integers(0, GEOM.channels - 1))
    if kind == "dtsv":
        idx = draw(st.integers(0, min(7, GEOM.data_tsvs_per_channel - 1)))
        return make_data_tsv_fault(GEOM, channel, idx)
    idx = draw(st.integers(0, min(3, GEOM.addr_tsvs_per_channel - 1)))
    return make_addr_tsv_fault(GEOM, channel, idx)


FAULT_SEQS = st.lists(crowded_faults(), min_size=0, max_size=7)


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
class TestObserveMatchesFromScratch:
    """observe() after each arrival == is_uncorrectable() on the prefix."""

    @settings(max_examples=30, deadline=None)
    @given(seq=FAULT_SEQS)
    def test_prefix_verdicts_identical(self, scheme, seq):
        incremental = SCHEMES[scheme](GEOM)
        reference = SCHEMES[scheme](GEOM)
        incremental.begin_trial()
        live = []
        for fault in seq:
            live.append(fault)
            assert incremental.observe(fault) == reference.is_uncorrectable(
                live
            ), f"{scheme} diverged at prefix length {len(live)}"

    @settings(max_examples=30, deadline=None)
    @given(seq=FAULT_SEQS, keep_mask=st.lists(st.booleans(), min_size=7, max_size=7))
    def test_rebuild_with_subset_then_observe(self, scheme, seq, keep_mask):
        """Scrub path: drop a random subset, then keep observing.

        Mirrors the engine: every fault handed to ``rebuild`` was observed
        earlier (scrubs remove transients / DDS spares, and re-exposure
        only ever returns previously observed faults).
        """
        if len(seq) < 2:
            return
        split = len(seq) // 2
        head, tail = seq[:split], seq[split:]

        incremental = SCHEMES[scheme](GEOM)
        incremental.begin_trial()
        for fault in head:
            incremental.observe(fault)
        survivors = [f for f, keep in zip(head, keep_mask) if keep]
        incremental.rebuild(survivors)

        reference = SCHEMES[scheme](GEOM)
        live = list(survivors)
        for fault in tail:
            live.append(fault)
            assert incremental.observe(fault) == reference.is_uncorrectable(
                live
            ), f"{scheme} diverged after rebuild at live size {len(live)}"

    @settings(max_examples=20, deadline=None)
    @given(seq=FAULT_SEQS, keep_mask=st.lists(st.booleans(), min_size=7, max_size=7))
    def test_rebuild_with_reexposed_faults(self, scheme, seq, keep_mask):
        """DDS re-exposure: a second rebuild re-adds previously dropped
        faults, so ``rebuild`` must also handle additions."""
        if len(seq) < 2:
            return
        incremental = SCHEMES[scheme](GEOM)
        incremental.begin_trial()
        for fault in seq:
            incremental.observe(fault)
        survivors = [f for f, keep in zip(seq, keep_mask) if keep]
        incremental.rebuild(survivors)
        # Re-expose everything that was dropped (all observed earlier).
        incremental.rebuild(list(seq))

        reference = SCHEMES[scheme](GEOM)
        probe = make_bit_fault(GEOM, 0, 0, 0, 0, Permanence.TRANSIENT)
        assert incremental.observe(probe) == reference.is_uncorrectable(
            list(seq) + [probe]
        )


class TestParityPeelMetrics:
    """The 3DP kernel must emit the same parity/* counters as the
    from-scratch path (the engine folds these into the deterministic
    snapshot, so any drift breaks result byte-identity)."""

    @settings(max_examples=25, deadline=None)
    @given(seq=FAULT_SEQS)
    def test_peel_event_streams_identical(self, seq):
        model = make_3dp(GEOM)
        assert isinstance(model, ParityND)
        model.metrics = MetricsRegistry()
        model.begin_trial()
        for fault in seq:
            model.observe(fault)

        reference = make_3dp(GEOM)
        reference.metrics = MetricsRegistry()
        live = []
        for fault in seq:
            live.append(fault)
            reference.is_uncorrectable(live)

        assert (
            model.metrics.deterministic_snapshot()
            == reference.metrics.deterministic_snapshot()
        )

    def test_peel_reuse_counter_is_volatile(self):
        model = make_3dp(GEOM)
        model.metrics = MetricsRegistry()
        model.begin_trial()
        # Two faults in unrelated components: the second arrival reuses
        # the first fault's cached component.
        model.observe(make_row_fault(GEOM, 0, 0, 1, Permanence.PERMANENT))
        model.observe(make_row_fault(GEOM, 3, 3, 9, Permanence.PERMANENT))
        assert model.metrics.counter("parity/peel_reuse") > 0
        snapshot = model.metrics.deterministic_snapshot()
        assert snapshot.counter("parity/peel_reuse") == 0
