"""Golden-value regression tests for the paper-figure experiments.

``tests/golden/*.json`` pins the exact sharded Monte-Carlo outputs of
the Figure 14 and Figure 18 experiments at reduced trial counts, under
fixed root seeds and a fixed shard plan.  A refactor of the trial loop,
fault sampling, striping, or shard/merge machinery that shifts any
number — failure counts, failure times, stratum weights — fails these
tests, so paper figures cannot drift silently.

Legitimately intended changes are re-pinned with::

    PYTHONPATH=src python tools/regen_goldens.py
"""

import json
from pathlib import Path

import pytest

from repro.reliability.experiments import fig14_experiment, fig18_experiment
from repro.reliability.results import ReliabilityResult

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def load(name):
    return json.loads((GOLDEN_DIR / name).read_text())


def assert_matches_golden(results, golden_results):
    assert sorted(results) == sorted(golden_results)
    for key, result in results.items():
        expected = ReliabilityResult.from_dict(golden_results[key])
        assert result == expected, (
            f"{key}: Monte-Carlo output drifted from the golden fixture "
            f"(got {result.failures}/{result.trials} failures, expected "
            f"{expected.failures}/{expected.trials}); if this change is "
            f"intended, regenerate with tools/regen_goldens.py"
        )


class TestBenchArtifactSchema:
    """The BENCH perf-trend artifact contract (schema 2): histogram
    metrics are folded into ``derived.histograms`` with deterministic
    quantile summaries, alongside the existing counter-derived stats."""

    def build(self, tmp_path):
        from repro.telemetry.registry import MetricsRegistry
        from tools.bench_report import ARTIFACT_SCHEMA, build_report

        metrics_dir = tmp_path / "metrics"
        metrics_dir.mkdir()
        registry = MetricsRegistry()
        registry.inc("engine/trials", 50)
        for value in (0.002, 0.004, 0.02):
            registry.observe(
                "engine/shard_seconds", value, edges=(0.001, 0.01, 0.1)
            )
        (metrics_dir / "fig14.json").write_text(
            json.dumps(registry.to_dict())
        )
        return ARTIFACT_SCHEMA, build_report(metrics_dir)

    def test_schema_version_is_2(self, tmp_path):
        schema, report = self.build(tmp_path)
        assert schema == 2
        assert report["schema"] == 2
        assert report["artifact"] == "BENCH"

    def test_histograms_folded_into_derived_sections(self, tmp_path):
        _, report = self.build(tmp_path)
        for section in (report["sources"]["fig14"], report["merged"]):
            summary = section["derived"]["histograms"][
                "engine/shard_seconds"
            ]
            assert summary["count"] == 3
            assert summary["max"] == 0.02
            assert set(summary) == {
                "count", "total", "mean", "min", "max", "p50", "p90", "p99"
            }

    def test_artifact_is_json_round_trip_stable(self, tmp_path):
        _, report = self.build(tmp_path)
        encoded = json.dumps(report, sort_keys=True)
        assert json.dumps(json.loads(encoded), sort_keys=True) == encoded


class TestGoldenFigures:
    def test_fig14_small_matches_golden(self, geometry):
        golden = load("fig14_small.json")
        results = fig14_experiment(
            geometry, golden["trials"], shard_size=golden["shard_size"]
        )
        assert_matches_golden(results, golden["results"])

    def test_fig18_small_matches_golden(self, geometry):
        golden = load("fig18_small.json")
        results = fig18_experiment(
            geometry,
            golden["symbol_trials"],
            golden["citadel_trials"],
            shard_size=golden["shard_size"],
        )
        assert_matches_golden(results, golden["results"])

    def test_goldens_have_resolving_power(self):
        """A fixture with zero failures everywhere could not detect a
        biased refactor; require every pinned experiment to have at
        least one failing scheme and sane counts."""
        for name in ("fig14_small.json", "fig18_small.json"):
            golden = load(name)
            total_failures = 0
            for key, payload in golden["results"].items():
                result = ReliabilityResult.from_dict(payload)
                assert result.trials > 0
                assert 0 <= result.failures <= result.trials
                assert len(result.failure_times_hours) == result.failures
                total_failures += result.failures
            assert total_failures > 0, name
