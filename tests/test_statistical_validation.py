"""Statistical validation of the sharded Monte-Carlo estimator.

The parallel runner must stay an *unbiased* estimator of lifetime
failure probability for any worker count.  These tests pin that down
against :class:`AnalyticModel`'s closed-form Poisson arithmetic using
instrumented correction models whose exact failure probability is
known:

* a model that fails on any fault -> P(fail) = P(N >= 1);
* a model that fails on the second permanent fault -> P(fail) =
  P(N_perm >= 2) (permanent faults survive scrubbing when DDS is off,
  exercising the stratified min_faults=2 sampling path).

A seed sweep asserts the analytic value falls inside the Wilson score
interval of every campaign (z=3.3, so a correct estimator fails any
single check with probability ~1e-3; the seeds are fixed, making the
outcome deterministic).
"""

import math

from repro.ecc.base import CorrectionModel
from repro.faults.rates import FailureRates
from repro.faults.types import Permanence
from repro.reliability import AnalyticModel, ParallelLifetimeRunner
from repro.reliability.montecarlo import EngineConfig

RATES = FailureRates.paper_baseline(tsv_device_fit=0.0)
SEEDS = (1, 2, 3, 4, 5, 6)
TRIALS = 3000
Z = 3.3


class FailOnAnyFault(CorrectionModel):
    """Fails the moment any fault arrives: P(fail) = P(N >= 1)."""

    @property
    def name(self) -> str:
        return "fail-on-any"

    def is_uncorrectable(self, faults) -> bool:
        return len(faults) > 0


class FailOnTwoPermanent(CorrectionModel):
    """Fails when two permanent faults are ever live simultaneously.

    Without DDS, permanent faults are never scrubbed away, so this
    fires iff >= 2 permanent faults arrive within the lifetime:
    P(fail) = P(Poisson(lambda_perm) >= 2).
    """

    @property
    def name(self) -> str:
        return "fail-on-two-permanent"

    def is_uncorrectable(self, faults) -> bool:
        return sum(1 for f in faults if f.is_permanent) >= 2

    def min_faults_to_fail(self) -> int:
        return 2


def wilson_interval(failures: int, trials: int, z: float = Z):
    """Wilson score interval for a binomial proportion."""
    p_hat = failures / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials**2))
        / denom
    )
    return center - half, center + half


def run_campaign(geometry, model, seed, min_faults, workers=1):
    runner = ParallelLifetimeRunner(
        geometry,
        RATES,
        model,
        EngineConfig(),
        root_seed=seed,
        workers=workers,
        shard_size=500,
    )
    return runner.run(trials=TRIALS, min_faults=min_faults)


def poisson_at_least(lam: float, k: int) -> float:
    cdf, term = 0.0, math.exp(-lam)
    for i in range(k):
        cdf += term
        term *= lam / (i + 1)
    return max(0.0, 1.0 - cdf)


class TestEstimatorUnbiased:
    def test_prob_at_least_one_fault_seed_sweep(self, geometry):
        """Unconditioned sampling: MC failure rate of the fail-on-any
        model must bracket AnalyticModel.prob_at_least(1)."""
        analytic = AnalyticModel(geometry, RATES).prob_at_least(1)
        for seed in SEEDS:
            result = run_campaign(
                geometry, FailOnAnyFault(geometry), seed, min_faults=0
            )
            assert result.stratum_weight == 1.0
            lo, hi = wilson_interval(result.failures, result.trials)
            assert lo <= analytic <= hi, (seed, lo, analytic, hi)

    def test_stratified_two_permanent_seed_sweep(self, geometry):
        """Stratified min_faults=2 sampling stays unbiased: the weighted
        estimate must bracket P(Poisson(lambda_perm) >= 2)."""
        model = AnalyticModel(geometry, RATES)
        lam_perm = sum(
            model.expected_faults(kind, Permanence.PERMANENT)
            for kind in RATES.die_fit
        )
        truth = poisson_at_least(lam_perm, 2)
        for seed in SEEDS:
            result = run_campaign(
                geometry, FailOnTwoPermanent(geometry), seed, min_faults=2
            )
            assert 0.0 < result.stratum_weight < 1.0
            lo, hi = wilson_interval(result.failures, result.trials)
            weighted = (
                result.stratum_weight * lo,
                result.stratum_weight * hi,
            )
            assert weighted[0] <= truth <= weighted[1], (seed, weighted, truth)

    def test_stratum_weight_matches_analytic_poisson(self, geometry):
        """The injector's stratum weight is the same Poisson tail the
        analytic model computes (independent implementations)."""
        analytic = AnalyticModel(geometry, RATES)
        result = run_campaign(
            geometry, FailOnTwoPermanent(geometry), seed=1, min_faults=2
        )
        assert math.isclose(
            result.stratum_weight, analytic.prob_at_least(2), rel_tol=1e-9
        )

    def test_expected_fault_count_recovered_from_tail(self, geometry):
        """Inverting P(N >= 1) = 1 - exp(-lambda) on the MC estimate
        recovers AnalyticModel.expected_all_faults within the CI."""
        analytic = AnalyticModel(geometry, RATES).expected_all_faults()
        merged_failures = 0
        merged_trials = 0
        for seed in SEEDS:
            result = run_campaign(
                geometry, FailOnAnyFault(geometry), seed, min_faults=0
            )
            merged_failures += result.failures
            merged_trials += result.trials
        lo, hi = wilson_interval(merged_failures, merged_trials)
        lam_lo = -math.log(1.0 - lo)
        lam_hi = -math.log(1.0 - hi)
        assert lam_lo <= analytic <= lam_hi

    def test_workers_do_not_bias_the_estimate(self, geometry):
        """Sanity link to determinism: the two-worker campaign is the
        same numbers, so every statistical property above transfers."""
        a = run_campaign(
            geometry, FailOnAnyFault(geometry), seed=3, min_faults=0
        )
        b = run_campaign(
            geometry, FailOnAnyFault(geometry), seed=3, min_faults=0, workers=2
        )
        assert a == b
