"""Tests for telemetry summarization: deterministic histogram
quantiles, derived stats, trace folding, and the progress reporter's
rate/ETA arithmetic (driven by an injected clock, never wall time).
"""

import io

import pytest

from repro.errors import TelemetryError
from repro.telemetry.progress import ProgressReporter
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.stats import (
    derived_stats,
    histogram_quantile,
    histogram_summary,
    load_metrics_file,
    summarize_trace,
)
from repro.telemetry.tracing import TraceWriter


def make_histogram(values, edges=(0.01, 0.1, 1.0)):
    registry = MetricsRegistry()
    for value in values:
        registry.observe("h", value, edges=edges)
    return registry.histogram("h")


class TestHistogramQuantile:
    def test_empty_histogram_returns_none(self):
        registry = MetricsRegistry()
        registry.declare_histogram("h", (0.01, 0.1))
        assert histogram_quantile(registry.histogram("h"), 0.5) is None

    def test_quantile_outside_unit_interval_raises(self):
        hist = make_histogram([0.05])
        with pytest.raises(TelemetryError, match=r"\[0, 1\]"):
            histogram_quantile(hist, 1.5)
        with pytest.raises(TelemetryError, match=r"\[0, 1\]"):
            histogram_quantile(hist, -0.1)

    def test_rank_rule_picks_smallest_covering_edge(self):
        # counts per bucket: (<=0.01): 2, (<=0.1): 1, (<=1.0): 1
        hist = make_histogram([0.005, 0.007, 0.05, 0.5])
        # p50 -> rank 2 -> first bucket edge 0.01
        assert histogram_quantile(hist, 0.5) == 0.01
        # p75 -> rank 3 -> second bucket edge 0.1
        assert histogram_quantile(hist, 0.75) == 0.1
        # p100 -> rank 4 -> third bucket, clamped to observed max 0.5
        assert histogram_quantile(hist, 1.0) == 0.5

    def test_clamped_to_observed_max(self):
        # Every sample in the first bucket: p99 must not overstate
        # beyond the maximum actually observed.
        hist = make_histogram([0.002, 0.003, 0.004])
        assert histogram_quantile(hist, 0.99) == 0.004

    def test_overflow_bucket_reports_max(self):
        hist = make_histogram([5.0, 7.0])  # beyond the last edge (1.0)
        assert histogram_quantile(hist, 0.99) == 7.0

    def test_q_zero_uses_rank_one(self):
        hist = make_histogram([0.005, 0.5])
        assert histogram_quantile(hist, 0.0) == 0.01

    def test_pure_function_of_bucket_counts(self):
        a = make_histogram([0.005, 0.05, 0.5])
        b = make_histogram([0.006, 0.06, 0.5])  # same buckets, same max
        assert histogram_quantile(a, 0.9) == histogram_quantile(b, 0.9)


class TestHistogramSummary:
    def test_summary_fields(self):
        summary = histogram_summary(make_histogram([0.005, 0.05, 0.5]))
        assert summary["count"] == 3
        assert summary["total"] == pytest.approx(0.555)
        assert summary["mean"] == pytest.approx(0.185)
        assert summary["min"] == 0.005
        assert summary["max"] == 0.5
        assert summary["p50"] == 0.1
        assert summary["p99"] == 0.5


class TestDerivedStats:
    def test_histograms_key_only_for_populated_histograms(self):
        registry = MetricsRegistry()
        registry.declare_histogram("empty/h", (0.1,))
        assert "histograms" not in derived_stats(registry)
        registry.observe("http/latency_seconds/healthz", 0.05,
                         edges=(0.01, 0.1))
        derived = derived_stats(registry)
        assert set(derived["histograms"]) == {
            "http/latency_seconds/healthz"
        }
        assert derived["histograms"]["http/latency_seconds/healthz"][
            "count"
        ] == 1

    def test_engine_counters_promoted(self):
        registry = MetricsRegistry()
        registry.inc("engine/trials", 100)
        registry.inc("engine/failures", 7)
        derived = derived_stats(registry)
        assert derived["trials"] == 100
        assert derived["failures"] == 7

    def test_parity_cache_hit_rate(self):
        registry = MetricsRegistry()
        registry.inc("perf/parity_lookups", 200)
        registry.inc("perf/parity_hits", 150)
        assert derived_stats(registry)["parity_cache_hit_rate"] == 0.75


class TestLoadMetricsFile:
    def test_accepts_bare_registry_document(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("engine/trials", 5)
        path = tmp_path / "metrics.json"
        path.write_text(
            __import__("json").dumps(registry.to_dict())
        )
        assert load_metrics_file(path).counter("engine/trials") == 5

    def test_rejects_document_without_registry(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("{}")
        with pytest.raises(TelemetryError, match="no metrics registry"):
            load_metrics_file(path)


class TestSummarizeTrace:
    def test_span_and_event_tallies(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        writer = TraceWriter(trace_path, sample_every=1)
        with writer.span("campaign"):
            for _ in range(3):
                with writer.span("shard"):
                    pass
            writer.event("merge")
        writer.close()
        summary = summarize_trace(trace_path)
        assert summary["spans"]["shard"]["count"] == 3
        assert summary["spans"]["campaign"]["count"] == 1
        assert summary["events"]["merge"] == 1


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


class TestProgressReporter:
    def make_reporter(self, clock, **kwargs):
        stream = io.StringIO()
        kwargs.setdefault("min_interval_s", 1.0)
        reporter = ProgressReporter(
            40, 100_000, stream=stream, clock=clock, **kwargs
        )
        return reporter, stream

    def test_rate_and_eta_math(self):
        clock = FakeClock()
        reporter, stream = self.make_reporter(clock)
        clock.now += 10.0  # 10 s elapsed, 30k trials -> 3000/s
        assert reporter.update(12, 30_000) is True
        line = stream.getvalue().strip()
        assert line == (
            "[campaign] shards 12/40  trials 30000/100000"
            "  3000 trials/s  ETA 23s"  # 70000 / 3000 = 23.3 -> 23
        )

    def test_no_eta_before_first_trial_or_after_done(self):
        clock = FakeClock()
        reporter, stream = self.make_reporter(clock)
        clock.now += 5.0
        reporter.update(0, 0)
        assert "ETA" not in stream.getvalue()
        clock.now += 30.0
        reporter.update(40, 100_000, force=True)
        assert "ETA" not in stream.getvalue().splitlines()[-1]

    def test_budget_line_clamped_at_zero(self):
        clock = FakeClock()
        reporter, stream = self.make_reporter(clock, time_budget_s=20.0)
        clock.now += 5.0
        reporter.update(1, 1000)
        assert "budget 15s left" in stream.getvalue()
        clock.now += 30.0  # past the budget
        reporter.update(2, 2000, force=True)
        assert "budget 0s left" in stream.getvalue().splitlines()[-1]

    def test_throttling_and_force(self):
        clock = FakeClock()
        reporter, stream = self.make_reporter(clock)
        assert reporter.update(1, 100) is True
        clock.now += 0.5  # within min_interval_s
        assert reporter.update(2, 200) is False
        assert reporter.update(2, 200, force=True) is True
        clock.now += 1.0
        assert reporter.update(3, 300) is True
        assert reporter.lines_emitted == 3

    def test_finish_always_emits(self):
        clock = FakeClock()
        reporter, stream = self.make_reporter(clock)
        reporter.update(1, 100)
        reporter.finish(40, 100_000)  # immediately after: force path
        assert reporter.lines_emitted == 2
        assert "shards 40/40" in stream.getvalue().splitlines()[-1]
