"""Tests for reprolint's project-wide pass: REPRO008/009/010, reporters,
baseline ratchet, schema lockfile, and CLI exit codes.

Rule fixtures are synthetic trees mirroring the repository layout.  The
acceptance tests at the bottom mutate *copies of the real sources*
(scheduler lock removal, RNG injection into a snapshot path, checkpoint
dataclass field addition) and assert the lint reproducibly fails —
these are the exact regressions the project pass exists to catch.
"""

import io
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import lint_paths  # noqa: E402
from tools.reprolint.cli import main as reprolint_main  # noqa: E402
from tools.reprolint.engine import (  # noqa: E402
    LintRunner,
    apply_baseline,
    baseline_key,
    load_baseline,
    write_baseline,
)
from tools.reprolint.project import ProjectContext, module_name_for  # noqa: E402
from tools.reprolint.reporters import SarifReporter  # noqa: E402
from tools.reprolint.rules import (  # noqa: E402
    ALL_PROJECT_CHECKERS,
    DeterminismTaintChecker,
    checker_by_code,
)


def write_tree(tmp_path, files):
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def lint_tree(tmp_path, codes, options=None):
    checkers = [checker_by_code(code)() for code in codes]
    return lint_paths(
        [tmp_path], checkers=checkers, root=tmp_path, options=options
    )


def build_project(tmp_path, options=None):
    runner = LintRunner([], root=tmp_path, options=options)
    return runner.build_project([tmp_path])


def codes_of(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------- #
# ProjectContext: symbol table, imports, attribute types, call graph
# ---------------------------------------------------------------------- #
class TestProjectContext:
    def test_module_names_strip_src_and_init(self):
        assert module_name_for("src/repro/service/http.py") == (
            "repro.service.http"
        )
        assert module_name_for("src/repro/__init__.py") == "repro"
        assert module_name_for("tests/test_x.py") == "tests.test_x"

    def test_symbols_and_cross_module_call_resolution(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/a.py": (
                    "def helper():\n"
                    "    return 1\n"
                ),
                "src/repro/b.py": (
                    "from repro.a import helper\n"
                    "class Wrapper:\n"
                    "    def go(self):\n"
                    "        return helper()\n"
                ),
            },
        )
        project = build_project(tmp_path)
        assert "repro.a.helper" in project.functions
        edges = project.call_graph["repro.b.Wrapper.go"]
        assert "repro.a.helper" in edges

    def test_self_attr_method_resolution_via_init_annotation(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/c.py": (
                    "class Inner:\n"
                    "    def poke(self):\n"
                    "        return 1\n"
                    "class Outer:\n"
                    "    def __init__(self, inner: Inner):\n"
                    "        self.inner = inner\n"
                    "    def run(self):\n"
                    "        return self.inner.poke()\n"
                ),
            },
        )
        project = build_project(tmp_path)
        outer = project.classes["repro.c.Outer"]
        assert outer.attr_types["inner"] == "repro.c.Inner"
        assert "repro.c.Inner.poke" in project.call_graph["repro.c.Outer.run"]

    def test_call_path_is_shortest_chain(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/d.py": (
                    "def z():\n    return 0\n"
                    "def y():\n    return z()\n"
                    "def x():\n    return y() + z()\n"
                ),
            },
        )
        project = build_project(tmp_path)
        assert project.call_path("repro.d.x", "repro.d.z") == [
            "repro.d.x",
            "repro.d.z",
        ]

    def test_lock_and_thread_detection(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/e.py": (
                    "import threading\n"
                    "class S:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.RLock()\n"
                    "        self._stop = threading.Event()\n"
                    "    def start(self):\n"
                    "        threading.Thread(target=self.run).start()\n"
                    "    def run(self):\n"
                    "        pass\n"
                ),
            },
        )
        project = build_project(tmp_path)
        cls = project.classes["repro.e.S"]
        assert cls.lock_attrs == {"_lock"}
        assert cls.event_attrs == {"_stop"}
        assert cls.spawns_threads


# ---------------------------------------------------------------------- #
# REPRO008: determinism taint
# ---------------------------------------------------------------------- #
class TestRepro008:
    def test_taint_reaches_sink_through_call_chain(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/leak.py": (
                    "import random\n"
                    "def jitter():\n"
                    "    return random.random()\n"
                    "def helper():\n"
                    "    return jitter()\n"
                    "class Thing:\n"
                    "    def to_dict(self):\n"
                    "        return {'x': helper()}\n"
                ),
            },
        )
        findings = lint_tree(tmp_path, ["REPRO008"])
        assert codes_of(findings) == ["REPRO008"]
        assert "random.random" in findings[0].message
        assert "Thing.to_dict" in findings[0].message
        assert "leak.jitter" in findings[0].message  # chain is reported

    def test_wall_clock_in_checkpoint_writer_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/cp.py": (
                    "import time\n"
                    "class Runner:\n"
                    "    def _write_checkpoint(self):\n"
                    "        return {'at': time.time()}\n"
                ),
            },
        )
        findings = lint_tree(tmp_path, ["REPRO008"])
        assert codes_of(findings) == ["REPRO008"]
        assert "time.time" in findings[0].message

    def test_sanitizer_module_is_exempt(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/rng.py": (
                    "import random\n"
                    "def make_rng(seed):\n"
                    "    return random.Random(seed)\n"
                ),
                "src/repro/user.py": (
                    "from repro.rng import make_rng\n"
                    "class Snap:\n"
                    "    def to_dict(self):\n"
                    "        return {'rng': make_rng(0)}\n"
                ),
            },
        )
        assert lint_tree(tmp_path, ["REPRO008"]) == []

    def test_monotonic_clock_is_not_a_source(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/mono.py": (
                    "import time\n"
                    "class Snap:\n"
                    "    def to_dict(self):\n"
                    "        return {'t': time.monotonic()}\n"
                ),
            },
        )
        assert lint_tree(tmp_path, ["REPRO008"]) == []

    def test_set_iteration_on_sink_path_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/it.py": (
                    "class Snap:\n"
                    "    def to_dict(self):\n"
                    "        return [x for x in {1, 2, 3}]\n"
                ),
            },
        )
        findings = lint_tree(tmp_path, ["REPRO008"])
        assert codes_of(findings) == ["REPRO008"]
        assert "sorted" in findings[0].message

    def test_sorted_set_iteration_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/it2.py": (
                    "class Snap:\n"
                    "    def to_dict(self):\n"
                    "        return [x for x in sorted({1, 2, 3})]\n"
                ),
            },
        )
        assert lint_tree(tmp_path, ["REPRO008"]) == []

    def test_counter_attr_serialization_flagged_and_sorted_ok(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/cnt.py": (
                    "from collections import Counter\n"
                    "from dataclasses import dataclass, field\n"
                    "@dataclass\n"
                    "class R:\n"
                    "    modes: Counter[str] = field(default_factory=Counter)\n"
                    "    def to_dict(self):\n"
                    "        return {'modes': dict(self.modes)}\n"
                ),
            },
        )
        findings = lint_tree(tmp_path, ["REPRO008"])
        assert codes_of(findings) == ["REPRO008"]
        assert "merge-order" in findings[0].message

    def test_suppression_comment_silences_taint(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/sup.py": (
                    "import random\n"
                    "class Thing:\n"
                    "    def to_dict(self):  # reprolint: disable=REPRO008\n"
                    "        return {'x': random.random()}\n"
                ),
            },
        )
        findings = lint_tree(tmp_path, ["REPRO008"])
        # The sink-level finding (anchored at the def) is suppressed.
        assert findings == []

    def test_tests_tree_is_out_of_scope(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "tests/test_x.py": (
                    "import random\n"
                    "class Fake:\n"
                    "    def to_dict(self):\n"
                    "        return random.random()\n"
                ),
            },
        )
        assert lint_tree(tmp_path, ["REPRO008"]) == []


# ---------------------------------------------------------------------- #
# REPRO009: lock discipline
# ---------------------------------------------------------------------- #
_BOX_HEADER = (
    "import threading\n"
    "class Box:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._items = []\n"
)


class TestRepro009:
    def test_unguarded_mutation_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/box.py": _BOX_HEADER + (
                    "    def bad(self, x):\n"
                    "        self._items.append(x)\n"
                ),
            },
        )
        findings = lint_tree(tmp_path, ["REPRO009"])
        assert codes_of(findings) == ["REPRO009"]
        assert "_items" in findings[0].message
        assert "Box.bad" in findings[0].message

    def test_with_lock_guard_is_clean(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/box.py": _BOX_HEADER + (
                    "    def good(self, x):\n"
                    "        with self._lock:\n"
                    "            self._items.append(x)\n"
                ),
            },
        )
        assert lint_tree(tmp_path, ["REPRO009"]) == []

    def test_locked_suffix_methods_trusted(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/box.py": _BOX_HEADER + (
                    "    def _drain_locked(self):\n"
                    "        self._items.clear()\n"
                ),
            },
        )
        assert lint_tree(tmp_path, ["REPRO009"]) == []

    def test_helper_guarded_at_every_callsite_is_lock_held(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/box.py": _BOX_HEADER + (
                    "    def pop_all(self):\n"
                    "        with self._lock:\n"
                    "            return self._helper()\n"
                    "    def _helper(self):\n"
                    "        return self._items.pop()\n"
                ),
            },
        )
        assert lint_tree(tmp_path, ["REPRO009"]) == []

    def test_helper_with_one_unguarded_callsite_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/box.py": _BOX_HEADER + (
                    "    def pop_all(self):\n"
                    "        with self._lock:\n"
                    "            return self._helper()\n"
                    "    def sneaky(self):\n"
                    "        return self._helper()\n"
                    "    def _helper(self):\n"
                    "        return self._items.pop()\n"
                ),
            },
        )
        findings = lint_tree(tmp_path, ["REPRO009"])
        assert codes_of(findings) == ["REPRO009"]
        assert "Box._helper" in findings[0].message

    def test_closure_resets_lock_context(self, tmp_path):
        # A closure defined under the lock runs later, off-thread.
        write_tree(
            tmp_path,
            {
                "src/repro/box.py": _BOX_HEADER + (
                    "    def schedule(self):\n"
                    "        with self._lock:\n"
                    "            def later():\n"
                    "                self._items.append(1)\n"
                    "            return later\n"
                ),
            },
        )
        findings = lint_tree(tmp_path, ["REPRO009"])
        assert codes_of(findings) == ["REPRO009"]

    def test_init_mutations_exempt_and_event_attrs_exempt(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/box.py": (
                    "import threading\n"
                    "class Box:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._stop = threading.Event()\n"
                    "        self._items = []\n"
                    "    def halt(self):\n"
                    "        self._stop = threading.Event()\n"
                ),
            },
        )
        assert lint_tree(tmp_path, ["REPRO009"]) == []

    def test_external_mutation_of_disciplined_class_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/box.py": _BOX_HEADER,
                "src/repro/poke.py": (
                    "from repro.box import Box\n"
                    "def poke(box: Box):\n"
                    "    box._items = []\n"
                ),
            },
        )
        findings = lint_tree(tmp_path, ["REPRO009"])
        assert codes_of(findings) == ["REPRO009"]
        assert "Box" in findings[0].message
        assert findings[0].path == "src/repro/poke.py"

    def test_locally_constructed_object_mutation_is_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/box.py": _BOX_HEADER,
                "src/repro/make.py": (
                    "from repro.box import Box\n"
                    "def make():\n"
                    "    box = Box()\n"
                    "    box._items = [1]\n"
                    "    return box\n"
                ),
            },
        )
        assert lint_tree(tmp_path, ["REPRO009"]) == []

    def test_delegation_to_disciplined_member_is_fine(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/q.py": (
                    "import threading\n"
                    "class Q:\n"
                    "    def __init__(self):\n"
                    "        self._cond = threading.Condition()\n"
                    "        self._items = []\n"
                    "    def pop(self):\n"
                    "        with self._cond:\n"
                    "            return self._items.pop()\n"
                    "class User:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self.queue = Q()\n"
                    "    def take(self):\n"
                    "        return self.queue.pop()\n"
                ),
            },
        )
        assert lint_tree(tmp_path, ["REPRO009"]) == []

    def test_thread_spawner_without_lock_flagged(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/spawn.py": (
                    "import threading\n"
                    "class Spawner:\n"
                    "    def __init__(self):\n"
                    "        self.n = 0\n"
                    "    def start(self):\n"
                    "        threading.Thread(target=self._run).start()\n"
                    "    def _run(self):\n"
                    "        self.n += 1\n"
                ),
            },
        )
        findings = lint_tree(tmp_path, ["REPRO009"])
        assert codes_of(findings) == ["REPRO009"]
        assert "declares no lock" in findings[0].message


# ---------------------------------------------------------------------- #
# REPRO010: checkpoint-schema drift
# ---------------------------------------------------------------------- #
_CK_SOURCE = (
    "from dataclasses import dataclass\n"
    "CHECKPOINT_VERSION = 1\n"
    "@dataclass\n"
    "class State:\n"
    "    a: int\n"
    "    b: str\n"
    "    def to_dict(self):\n"
    "        return {}\n"
)


def _lock_options(tmp_path):
    return {"schema_lockfile": tmp_path / "schema_lock.json"}


def _write_lock(tmp_path):
    rc = reprolint_main(
        [
            str(tmp_path),
            "--root",
            str(tmp_path),
            "--schema-lockfile",
            str(tmp_path / "schema_lock.json"),
            "--write-lockfile",
        ]
    )
    assert rc == 0


class TestRepro010:
    def test_missing_lockfile_with_reachable_dataclasses(self, tmp_path):
        write_tree(tmp_path, {"src/repro/ck.py": _CK_SOURCE})
        findings = lint_tree(
            tmp_path, ["REPRO010"], options=_lock_options(tmp_path)
        )
        assert codes_of(findings) == ["REPRO010"]
        assert "missing" in findings[0].message

    def test_no_reachable_dataclasses_no_lockfile_needed(self, tmp_path):
        write_tree(tmp_path, {"src/repro/plain.py": "x = 1\n"})
        assert (
            lint_tree(tmp_path, ["REPRO010"], options=_lock_options(tmp_path))
            == []
        )

    def test_in_sync_lockfile_clean(self, tmp_path):
        write_tree(tmp_path, {"src/repro/ck.py": _CK_SOURCE})
        _write_lock(tmp_path)
        assert (
            lint_tree(tmp_path, ["REPRO010"], options=_lock_options(tmp_path))
            == []
        )

    def test_field_added_without_version_bump_fails(self, tmp_path):
        write_tree(tmp_path, {"src/repro/ck.py": _CK_SOURCE})
        _write_lock(tmp_path)
        (tmp_path / "src/repro/ck.py").write_text(
            _CK_SOURCE.replace("    b: str\n", "    b: str\n    c: float\n")
        )
        findings = lint_tree(
            tmp_path, ["REPRO010"], options=_lock_options(tmp_path)
        )
        assert codes_of(findings) == ["REPRO010"]
        assert "bump CHECKPOINT_VERSION" in findings[0].message
        assert "c: float" in findings[0].message

    def test_field_added_with_version_bump_asks_for_regeneration(
        self, tmp_path
    ):
        write_tree(tmp_path, {"src/repro/ck.py": _CK_SOURCE})
        _write_lock(tmp_path)
        (tmp_path / "src/repro/ck.py").write_text(
            _CK_SOURCE.replace("    b: str\n", "    b: str\n    c: float\n")
            .replace("CHECKPOINT_VERSION = 1", "CHECKPOINT_VERSION = 2")
        )
        findings = lint_tree(
            tmp_path, ["REPRO010"], options=_lock_options(tmp_path)
        )
        assert codes_of(findings) == ["REPRO010"]
        assert "regenerate" in findings[0].message
        assert "bump" not in findings[0].message

    def test_version_bump_alone_requires_regeneration(self, tmp_path):
        write_tree(tmp_path, {"src/repro/ck.py": _CK_SOURCE})
        _write_lock(tmp_path)
        (tmp_path / "src/repro/ck.py").write_text(
            _CK_SOURCE.replace(
                "CHECKPOINT_VERSION = 1", "CHECKPOINT_VERSION = 2"
            )
        )
        findings = lint_tree(
            tmp_path, ["REPRO010"], options=_lock_options(tmp_path)
        )
        assert codes_of(findings) == ["REPRO010"]
        assert "regenerate" in findings[0].message

    def test_regeneration_after_bump_is_clean(self, tmp_path):
        write_tree(tmp_path, {"src/repro/ck.py": _CK_SOURCE})
        _write_lock(tmp_path)
        (tmp_path / "src/repro/ck.py").write_text(
            _CK_SOURCE.replace("    b: str\n", "    b: str\n    c: float\n")
            .replace("CHECKPOINT_VERSION = 1", "CHECKPOINT_VERSION = 2")
        )
        _write_lock(tmp_path)
        assert (
            lint_tree(tmp_path, ["REPRO010"], options=_lock_options(tmp_path))
            == []
        )

    def test_nested_dataclass_fields_are_fingerprinted(self, tmp_path):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Inner:\n"
            "    x: int\n"
            "@dataclass\n"
            "class Outer:\n"
            "    inner: Inner\n"
            "    def to_dict(self):\n"
            "        return {}\n"
        )
        write_tree(tmp_path, {"src/repro/nest.py": source})
        _write_lock(tmp_path)
        locked = json.loads((tmp_path / "schema_lock.json").read_text())
        assert "repro.nest.Inner" in locked["classes"]
        # Drifting the *nested* class alone is caught.
        (tmp_path / "src/repro/nest.py").write_text(
            source.replace("    x: int\n", "    x: int\n    y: int\n")
        )
        findings = lint_tree(
            tmp_path, ["REPRO010"], options=_lock_options(tmp_path)
        )
        assert codes_of(findings) == ["REPRO010"]
        assert "Inner" in findings[0].message

    def test_asdict_target_is_a_schema_root(self, tmp_path):
        source = (
            "from dataclasses import dataclass, asdict\n"
            "@dataclass\n"
            "class Config:\n"
            "    n: int\n"
            "class Runner:\n"
            "    def __init__(self, config: Config):\n"
            "        self.config = config\n"
            "    def _write_checkpoint(self):\n"
            "        return asdict(self.config)\n"
        )
        write_tree(tmp_path, {"src/repro/run.py": source})
        _write_lock(tmp_path)
        locked = json.loads((tmp_path / "schema_lock.json").read_text())
        assert "repro.run.Config" in locked["classes"]

    def test_sampling_field_drift_without_bump_fails(self, tmp_path):
        """ISSUE 7 regression: growing an engine-config dataclass a
        ``sampling`` knob without bumping CHECKPOINT_VERSION must fail
        lint against the existing lockfile."""
        write_tree(tmp_path, {"src/repro/ck.py": _CK_SOURCE})
        _write_lock(tmp_path)
        (tmp_path / "src/repro/ck.py").write_text(
            _CK_SOURCE.replace(
                "    b: str\n", "    b: str\n    sampling: str\n"
            )
        )
        findings = lint_tree(
            tmp_path, ["REPRO010"], options=_lock_options(tmp_path)
        )
        assert codes_of(findings) == ["REPRO010"]
        assert "bump CHECKPOINT_VERSION" in findings[0].message
        assert "sampling: str" in findings[0].message


class TestProjectLockfileCurrent:
    """The checked-in lockfile must reflect the current schema surface:
    CHECKPOINT_VERSION 7 (batch_trials) plus the sampling,
    run-provenance, replay, and batch schema growth."""

    LOCKFILE = (
        Path(__file__).resolve().parent.parent
        / "tools"
        / "reprolint"
        / "schema_lock.json"
    )

    def test_lockfile_records_checkpoint_version_7(self):
        locked = json.loads(self.LOCKFILE.read_text())
        assert locked["checkpoint_version"] == 7

    def test_lockfile_covers_batch_schema_surface(self):
        locked = json.loads(self.LOCKFILE.read_text())
        classes = locked["classes"]
        engine = classes["repro.reliability.montecarlo.EngineConfig"]
        assert any(f.startswith("batch_trials:") for f in engine)
        spec = classes["repro.service.jobs.CampaignSpec"]
        assert any(f.startswith("batch:") for f in spec)

    def test_lockfile_covers_sampling_schema_surface(self):
        locked = json.loads(self.LOCKFILE.read_text())
        classes = locked["classes"]
        engine = classes["repro.reliability.montecarlo.EngineConfig"]
        assert any(f.startswith("sampling:") for f in engine)
        assert any(f.startswith("target_ci_width:") for f in engine)
        assert "repro.reliability.results.StratumStats" in classes
        spec = classes["repro.service.jobs.CampaignSpec"]
        assert any(f.startswith("sampling:") for f in spec)

    def test_lockfile_covers_manifest_schema_surface(self):
        locked = json.loads(self.LOCKFILE.read_text())
        classes = locked["classes"]
        result = classes["repro.reliability.results.ReliabilityResult"]
        assert any(f.startswith("manifest:") for f in result)
        manifest = classes["repro.telemetry.manifest.RunManifest"]
        assert any(f.startswith("schemes_hash:") for f in manifest)
        assert any(f.startswith("spec_hash:") for f in manifest)

    def test_lockfile_covers_replay_schema_surface(self):
        locked = json.loads(self.LOCKFILE.read_text())
        classes = locked["classes"]
        engine = classes["repro.reliability.montecarlo.EngineConfig"]
        assert any(f.startswith("thermal_bank_fit:") for f in engine)
        assert "repro.replay.engine.ReplayConfig" in classes
        assert "repro.replay.results.ReplayResult" in classes
        spec = classes["repro.service.jobs.CampaignSpec"]
        assert any(f.startswith("mode:") for f in spec)
        assert any(f.startswith("workload:") for f in spec)

    def test_checked_in_lockfile_is_in_sync(self):
        root = self.LOCKFILE.parent.parent.parent
        rc = reprolint_main(
            [
                str(root / "src"),
                str(root / "tests"),
                str(root / "benchmarks"),
                "--root",
                str(root),
                "--schema-lockfile",
                str(self.LOCKFILE),
                "--check-lockfile",
            ]
        )
        assert rc == 0


# ---------------------------------------------------------------------- #
# Baseline ratchet
# ---------------------------------------------------------------------- #
class TestBaseline:
    def _dirty_tree(self, tmp_path):
        return write_tree(
            tmp_path,
            {
                "src/repro/leak.py": (
                    "import random\n"
                    "class Thing:\n"
                    "    def to_dict(self):\n"
                    "        return random.random()\n"
                ),
            },
        )

    def test_roundtrip_filters_recorded_findings(self, tmp_path):
        self._dirty_tree(tmp_path)
        findings = lint_tree(tmp_path, ["REPRO008"])
        assert len(findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        assert apply_baseline(findings, baseline) == []

    def test_new_findings_survive_the_filter(self, tmp_path):
        self._dirty_tree(tmp_path)
        findings = lint_tree(tmp_path, ["REPRO008"])
        assert apply_baseline(findings, {}) == findings

    def test_counts_ratchet_per_key(self, tmp_path):
        self._dirty_tree(tmp_path)
        findings = lint_tree(tmp_path, ["REPRO008"])
        key = baseline_key(findings[0])
        # Two identical findings against an allowance of one: one leaks.
        doubled = findings + findings
        assert apply_baseline(doubled, {key: 1}) == findings

    def test_cli_write_then_apply(self, tmp_path, capsys):
        self._dirty_tree(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        args = [str(tmp_path), "--root", str(tmp_path), "--select", "REPRO008"]
        assert reprolint_main(args) == 1
        assert (
            reprolint_main(
                args + ["--baseline", str(baseline_path), "--write-baseline"]
            )
            == 0
        )
        assert reprolint_main(args + ["--baseline", str(baseline_path)]) == 0
        capsys.readouterr()

    def test_cli_unreadable_baseline_is_usage_error(self, tmp_path, capsys):
        self._dirty_tree(tmp_path)
        assert (
            reprolint_main(
                [
                    str(tmp_path),
                    "--root",
                    str(tmp_path),
                    "--baseline",
                    str(tmp_path / "missing.json"),
                ]
            )
            == 2
        )
        capsys.readouterr()


# ---------------------------------------------------------------------- #
# Reporters and CLI
# ---------------------------------------------------------------------- #
class TestSarifReporter:
    def test_valid_minimal_sarif(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/leak.py": (
                    "import random\n"
                    "class Thing:\n"
                    "    def to_dict(self):\n"
                    "        return random.random()\n"
                ),
            },
        )
        findings = lint_tree(tmp_path, ["REPRO008"])
        stream = io.StringIO()
        SarifReporter(stream, [DeterminismTaintChecker()]).report(findings)
        payload = json.loads(stream.getvalue())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "REPRO008" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "REPRO008"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/leak.py"
        assert location["region"]["startLine"] == findings[0].line

    def test_empty_report_still_valid(self):
        stream = io.StringIO()
        SarifReporter(stream).report([])
        payload = json.loads(stream.getvalue())
        assert payload["runs"][0]["results"] == []


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/ok.py": "x = 1\n"})
        assert reprolint_main([str(tmp_path), "--root", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {
                "src/repro/leak.py": (
                    "import random\n"
                    "class Thing:\n"
                    "    def to_dict(self):\n"
                    "        return random.random()\n"
                ),
            },
        )
        assert (
            reprolint_main(
                [str(tmp_path), "--root", str(tmp_path), "--select", "REPRO008"]
            )
            == 1
        )
        assert "REPRO008" in capsys.readouterr().out

    def test_unknown_code_exits_two(self, capsys):
        assert reprolint_main(["--select", "REPRO999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert reprolint_main([str(tmp_path / "nope")]) == 2
        capsys.readouterr()

    def test_write_baseline_without_path_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/ok.py": "x = 1\n"})
        assert (
            reprolint_main(
                [str(tmp_path), "--root", str(tmp_path), "--write-baseline"]
            )
            == 2
        )
        capsys.readouterr()

    def test_sarif_format_end_to_end(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/ok.py": "x = 1\n"})
        assert (
            reprolint_main(
                [str(tmp_path), "--root", str(tmp_path), "--format", "sarif"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"

    def test_output_file(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/ok.py": "x = 1\n"})
        out = tmp_path / "report.json"
        assert (
            reprolint_main(
                [
                    str(tmp_path),
                    "--root",
                    str(tmp_path),
                    "--format",
                    "json",
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        assert json.loads(out.read_text())["count"] == 0
        capsys.readouterr()

    def test_list_rules_includes_project_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REPRO008", "REPRO009", "REPRO010"):
            assert code in out

    def test_check_lockfile_stale_and_sync(self, tmp_path, capsys):
        write_tree(tmp_path, {"src/repro/ck.py": _CK_SOURCE})
        lock = tmp_path / "schema_lock.json"
        base = [
            str(tmp_path),
            "--root",
            str(tmp_path),
            "--schema-lockfile",
            str(lock),
        ]
        assert reprolint_main(base + ["--check-lockfile"]) == 1  # missing
        assert reprolint_main(base + ["--write-lockfile"]) == 0
        assert reprolint_main(base + ["--check-lockfile"]) == 0
        (tmp_path / "src/repro/ck.py").write_text(
            _CK_SOURCE.replace("    b: str\n", "    b: str\n    c: float\n")
        )
        assert reprolint_main(base + ["--check-lockfile"]) == 1  # stale
        capsys.readouterr()


# ---------------------------------------------------------------------- #
# Acceptance: injected regressions against copies of the real sources
# ---------------------------------------------------------------------- #
def _copy_real(tmp_path, relpaths):
    for relpath in relpaths:
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text((REPO_ROOT / relpath).read_text())


class TestAcceptanceInjections:
    def test_removing_scheduler_lock_acquisition_fails_lint(self, tmp_path):
        files = [
            "src/repro/service/scheduler.py",
            "src/repro/service/queue.py",
            "src/repro/service/store.py",
        ]
        _copy_real(tmp_path, files)
        assert lint_tree(tmp_path, ["REPRO009"]) == []  # pristine copy
        scheduler = tmp_path / "src/repro/service/scheduler.py"
        source = scheduler.read_text()
        assert source.count("with self._lock:") > 1
        # Neutralize one lock acquisition without disturbing indentation.
        scheduler.write_text(
            source.replace("with self._lock:", "if True:", 1)
        )
        findings = lint_tree(tmp_path, ["REPRO009"])
        assert findings, "deleting a lock acquisition must fail the lint"
        assert all(f.code == "REPRO009" for f in findings)
        assert all(f.path == "src/repro/service/scheduler.py" for f in findings)

    def test_injecting_rng_into_snapshot_path_fails_lint(self, tmp_path):
        _copy_real(tmp_path, ["src/repro/telemetry/registry.py"])
        assert lint_tree(tmp_path, ["REPRO008"]) == []  # pristine copy
        registry = tmp_path / "src/repro/telemetry/registry.py"
        source = registry.read_text()
        anchor = "snap = MetricsRegistry()"
        assert anchor in source
        registry.write_text(
            source.replace("import bisect", "import bisect\nimport random")
            .replace(anchor, anchor + "\n        _jitter = random.random()")
        )
        findings = lint_tree(tmp_path, ["REPRO008"])
        assert findings, "random.random() on a snapshot path must fail"
        assert any(
            "deterministic_snapshot" in f.message and "random.random" in f.message
            for f in findings
        )

    def test_adding_checkpoint_field_without_bump_fails_lint(self, tmp_path):
        _copy_real(tmp_path, ["src/repro/reliability/results.py"])
        lock = tmp_path / "schema_lock.json"
        _write_lock(tmp_path)
        options = {"schema_lockfile": lock}
        assert lint_tree(tmp_path, ["REPRO010"], options=options) == []
        results = tmp_path / "src/repro/reliability/results.py"
        source = results.read_text()
        anchor = "    min_faults: int"
        assert anchor in source
        results.write_text(
            source.replace(anchor, anchor + "\n    new_field: int = 0", 1)
        )
        findings = lint_tree(tmp_path, ["REPRO010"], options=options)
        assert findings, "unversioned schema drift must fail the lint"
        assert any("ReliabilityResult" in f.message for f in findings)
        assert any("CHECKPOINT_VERSION" in f.message for f in findings)


# ---------------------------------------------------------------------- #
# The real repository must lint clean under the project rules
# ---------------------------------------------------------------------- #
class TestRepositoryIsClean:
    def test_project_rules_clean_on_real_tree(self):
        checkers = [cls() for cls in ALL_PROJECT_CHECKERS]
        findings = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
            checkers=checkers,
            root=REPO_ROOT,
        )
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_schema_lockfile_in_sync(self, capsys):
        rc = reprolint_main(
            [
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "benchmarks"),
                "--root",
                str(REPO_ROOT),
                "--check-lockfile",
            ]
        )
        capsys.readouterr()
        assert rc == 0
