"""End-to-end tests of the functional Citadel datapath: real bytes, real
CRC-32, real XOR parity reconstruction, real TSV swap and DDS remaps."""

import random

import pytest

from repro.core.datapath import CitadelDatapath
from repro.errors import ConfigurationError, GeometryError, UncorrectableError
from repro.faults.types import (
    Permanence,
    make_addr_tsv_fault,
    make_bank_fault,
    make_bit_fault,
    make_column_fault,
    make_data_tsv_fault,
    make_row_fault,
)
from repro.stack.geometry import StackGeometry

P = Permanence.PERMANENT


@pytest.fixture
def dp():
    return CitadelDatapath(rng=random.Random(7))


def payload(address, nbytes=64):
    rng = random.Random(address * 2654435761 % (1 << 32))
    return bytes(rng.randrange(256) for _ in range(nbytes))


def fill(dp, addresses):
    for a in addresses:
        dp.write(a, payload(a))


class TestFaultFreePath:
    def test_write_read_roundtrip(self, dp):
        fill(dp, range(50))
        for a in range(50):
            assert dp.read(a) == payload(a)
        assert dp.stats.crc_mismatches == 0

    def test_overwrite(self, dp):
        dp.write(3, b"\xAA" * 64)
        dp.write(3, b"\x55" * 64)
        assert dp.read(3) == b"\x55" * 64

    def test_rejects_bad_sizes_and_addresses(self, dp):
        with pytest.raises(ConfigurationError):
            dp.write(0, b"short")
        with pytest.raises(GeometryError):
            dp.write(dp.num_lines, b"\x00" * 64)

    def test_unwritten_lines_read_zero(self, dp):
        assert dp.read(9) == b"\x00" * 64

    def test_parity_bank_not_addressable(self, dp):
        assert dp.parity_bank not in dp._data_banks


class TestCellFaultCorrection:
    def _home(self, dp, address):
        return dp._locate(address)

    def test_bit_fault_corrected(self, dp):
        fill(dp, range(20))
        die, bank, row, slot = self._home(dp, 5)
        # Stick a bit inside that line's col range.
        col = slot * dp.geometry.line_bits + 13
        dp.inject(make_bit_fault(dp.geometry, die, bank, row, col, P))
        assert dp.read(5) == payload(5)
        assert dp.stats.corrections >= 1 or dp.stats.crc_mismatches == 0

    def test_row_fault_corrected_and_row_spared(self, dp):
        fill(dp, range(20))
        die, bank, row, slot = self._home(dp, 7)
        dp.inject(make_row_fault(dp.geometry, die, bank, row, P))
        data = dp.read(7)
        assert data == payload(7)
        if dp.stats.corrections:
            assert dp.stats.rows_spared >= 1
            # Re-read now goes through the spare row: clean.
            before = dp.stats.crc_mismatches
            assert dp.read(7) == payload(7)
            assert dp.stats.crc_mismatches == before

    def test_bank_fault_corrected_and_bank_spared(self, dp):
        fill(dp, range(40))
        die, bank, _, _ = self._home(dp, 11)
        dp.inject(make_bank_fault(dp.geometry, die, bank, P))
        assert dp.read(11) == payload(11)
        assert dp.stats.banks_spared == 1
        # Every line of the spared bank reads clean afterwards.
        for a in range(40):
            assert dp.read(a) == payload(a)

    def test_column_fault_corrected(self, dp):
        fill(dp, range(30))
        die, bank, row, slot = self._home(dp, 3)
        col = slot * dp.geometry.line_bits + 100
        dp.inject(make_column_fault(dp.geometry, die, bank, col, P))
        assert dp.read(3) == payload(3)

    def test_two_overlapping_bank_faults_are_data_loss(self, dp):
        dp_nodds = CitadelDatapath(enable_dds=False)
        # Populate several rows of every bank so the corruption of both
        # failed banks is visible to every parity dimension.
        fill(dp_nodds, range(150))
        d0, b0, _, _ = dp_nodds._locate(0)
        other = next(
            a for a in range(150)
            if dp_nodds._locate(a)[:2] not in ((d0, b0), dp_nodds.parity_bank)
        )
        d1, b1, _, _ = dp_nodds._locate(other)
        dp_nodds.inject(make_bank_fault(dp_nodds.geometry, d0, b0, P))
        dp_nodds.inject(make_bank_fault(dp_nodds.geometry, d1, b1, P))
        with pytest.raises(UncorrectableError):
            dp_nodds.read(0)

    def test_reconstruction_reads_spared_banks_through_remap(self, dp):
        """After DDS spares a bank, 3DP reconstruction must source the
        relocated copy: a second same-row-index bank failure one scrub
        later is then fully recoverable (regression test)."""
        fill(dp, range(150))
        d0, b0, _, _ = dp._locate(0)
        dp.inject(make_bank_fault(dp.geometry, d0, b0, P))
        assert dp.scrub().lines_lost == []
        other = next(
            a for a in range(150)
            if dp._locate(a)[:2] not in ((d0, b0), dp.parity_bank)
        )
        d1, b1, _, _ = dp._locate(other)
        dp.inject(make_bank_fault(dp.geometry, d1, b1, P))
        report = dp.scrub()
        assert report.lines_lost == []
        for a in range(150):
            assert dp.read(a) == payload(a)

    def test_dds_isolates_sequential_bank_faults(self, dp):
        """With DDS, the first bank fault is spared, so a later second
        bank fault remains correctable — the accumulation-prevention
        claim of §VII."""
        fill(dp, range(40))
        d0, b0, _, _ = dp._locate(0)
        dp.inject(make_bank_fault(dp.geometry, d0, b0, P))
        assert dp.read(0) == payload(0)  # corrected + bank spared
        other = next(
            a for a in range(40)
            if dp._locate(a)[:2] not in ((d0, b0), dp.parity_bank)
        )
        d1, b1, _, _ = dp._locate(other)
        dp.inject(make_bank_fault(dp.geometry, d1, b1, P))
        assert dp.read(other) == payload(other)
        assert dp.stats.banks_spared == 2


class TestTSVPath:
    def test_data_tsv_detected_and_swapped(self, dp):
        fill(dp, range(30))
        die, bank, row, slot = dp._locate(2)
        dp.inject(make_data_tsv_fault(dp.geometry, die, 3))
        assert dp.read(2) == payload(2)
        assert dp.stats.tsv_repairs == 1
        # Whole die reads clean after the swap, without corrections.
        corrections = dp.stats.corrections
        for a in range(30):
            assert dp.read(a) == payload(a)
        assert dp.stats.corrections == corrections

    def test_addr_tsv_wrong_row_detected_by_address_crc(self, dp):
        """An ATSV fault returns a self-consistent but *wrong* row; only
        the address-mixed CRC catches it (§V-C2)."""
        fill(dp, range(dp.num_lines // 4))
        fault = make_addr_tsv_fault(dp.geometry, 0, 0, stuck_value=0)
        dp.inject(fault)
        # Pick an address whose row is unreachable (row bit 0 == 1).
        victim = next(
            a for a in range(dp.num_lines // 4)
            if dp._locate(a)[0] == 0 and dp._locate(a)[2] in
            fault.footprint.rows
        )
        assert dp.read(victim) == payload(victim)
        assert dp.stats.tsv_repairs == 1

    def test_tsv_swap_disabled_makes_tsv_fatal(self):
        dp = CitadelDatapath(enable_tsv_swap=False, enable_dds=False)
        fill(dp, range(20))
        dp.inject(make_data_tsv_fault(dp.geometry, 0, 3))
        victims = [a for a in range(20) if dp._locate(a)[0] == 0]
        with pytest.raises(UncorrectableError):
            for v in victims:
                dp.read(v)

    def test_swap_pool_exhaustion(self, dp):
        fill(dp, range(10))
        for idx in (1, 2, 3):  # pool holds 2 stand-by TSVs in the datapath
            dp.inject(make_data_tsv_fault(dp.geometry, 0, idx))
        victims = [a for a in range(10) if dp._locate(a)[0] == 0]
        outcomes = []
        for v in victims:
            try:
                outcomes.append(dp.read(v) == payload(v))
            except UncorrectableError:
                outcomes.append(False)
        assert dp.stats.tsv_repairs == 2  # pool exhausted after two


class TestScrub:
    def test_scrub_clean_memory(self, dp):
        fill(dp, range(25))
        report = dp.scrub()
        assert report.lines_checked >= 25
        assert report.lines_corrected == 0
        assert report.lines_lost == []

    def test_scrub_corrects_and_spares(self, dp):
        fill(dp, range(25))
        die, bank, row, _ = dp._locate(4)
        dp.inject(make_row_fault(dp.geometry, die, bank, row, P))
        report = dp.scrub()
        assert report.lines_lost == []
        # After scrubbing, all data is intact.
        for a in range(25):
            assert dp.read(a) == payload(a)

    def test_scrub_reports_losses(self):
        dp = CitadelDatapath(enable_dds=False, enable_tsv_swap=False)
        fill(dp, range(20))
        dp.inject(make_data_tsv_fault(dp.geometry, 0, 5))
        report = dp.scrub()
        assert report.lines_lost  # unswapped TSV faults are data loss
