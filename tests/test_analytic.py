"""The analytic model must agree with both the FIT arithmetic and the
Monte-Carlo engine's measurements."""

import random

import pytest

from repro.core.parity3dp import make_3dp
from repro.ecc import RAID5
from repro.faults.rates import FailureRates
from repro.faults.types import FaultKind, Permanence
from repro.reliability.analytic import AnalyticModel
from repro.reliability.montecarlo import EngineConfig, LifetimeSimulator
from repro.stack.geometry import LIFETIME_HOURS, StackGeometry


@pytest.fixture
def model():
    return AnalyticModel(StackGeometry(), FailureRates.paper_baseline())


class TestArithmetic:
    def test_expected_faults_fit_math(self, model):
        # 80 FIT/die * 9 dies * 61320 h * 1e-9.
        expected = 80.0 * 9 * LIFETIME_HOURS * 1e-9
        assert model.expected_permanent(FaultKind.BANK) == pytest.approx(
            expected, rel=1e-6
        )

    def test_expected_all_matches_injector(self, model):
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(model.geometry, model.rates)
        assert model.expected_all_faults() == pytest.approx(
            injector.expected_faults(), rel=1e-9
        )

    def test_prob_at_least_matches_injector(self, model):
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(model.geometry, model.rates)
        for k in (1, 2, 3):
            assert model.prob_at_least(k) == pytest.approx(
                injector.prob_at_least(k), rel=1e-9
            )

    def test_transient_vs_permanent(self, model):
        assert model.expected_faults(
            FaultKind.BIT, Permanence.TRANSIENT
        ) < model.expected_faults(FaultKind.BIT, Permanence.PERMANENT)


class TestAgainstMonteCarlo:
    """First-order estimates must match the simulator within MC error and
    the (few-percent) truncation error of the expansion."""

    def test_3dp_failure_rate(self, model):
        estimate = model.three_dp_failure_estimate()["total"]
        sim = LifetimeSimulator(
            model.geometry,
            model.rates,
            make_3dp(model.geometry),
            EngineConfig(),
            rng=random.Random(90),
        )
        measured = sim.run(trials=40000).failure_probability
        assert measured == pytest.approx(estimate, rel=0.35)

    def test_raid5_failure_rate(self, model):
        estimate = model.raid5_failure_estimate()
        sim = LifetimeSimulator(
            model.geometry,
            model.rates,
            RAID5(model.geometry),
            EngineConfig(),
            rng=random.Random(91),
        )
        measured = sim.run(trials=40000).failure_probability
        assert measured == pytest.approx(estimate, rel=0.45)

    def test_citadel_window_estimate_is_tiny(self, model):
        """The scrub-window argument predicts ~1e-7: the reason Citadel's
        improvement is measured in hundreds-x."""
        estimate = model.citadel_window_estimate()
        assert 1e-8 < estimate < 1e-6

    def test_mode_breakdown_ordering(self, model):
        modes = model.three_dp_failure_estimate()
        assert modes["column_x_subarray"] > modes["column_pair_same_bit"]
        assert modes["total"] == pytest.approx(
            modes["subarray_pair_same_index"]
            + modes["column_x_subarray"]
            + modes["column_pair_same_bit"]
        )
