"""Unit tests for repro.stack.geometry."""

import pytest

from repro.errors import ConfigurationError, GeometryError
from repro.stack.geometry import (
    LIFETIME_HOURS,
    SCRUB_INTERVAL_HOURS,
    StackGeometry,
)


class TestBaselineGeometry:
    """The defaults must match the paper's Table II configuration."""

    def test_eight_data_dies_one_metadata_die(self, geometry):
        assert geometry.data_dies == 8
        assert geometry.metadata_dies == 1
        assert geometry.total_dies == 9

    def test_one_channel_per_data_die(self, geometry):
        assert geometry.channels == 8

    def test_eight_banks_per_die(self, geometry):
        assert geometry.banks_per_die == 8
        assert geometry.data_banks == 64
        assert geometry.total_banks == 72

    def test_row_dimensions(self, geometry):
        assert geometry.rows_per_bank == 64 * 1024
        assert geometry.row_bytes == 2048
        assert geometry.row_bits == 16384

    def test_cache_line_packing(self, geometry):
        assert geometry.line_bytes == 64
        assert geometry.line_bits == 512
        assert geometry.lines_per_row == 32

    def test_die_capacity_is_8gb(self, geometry):
        assert geometry.die_bytes == 1 << 30  # 8 Gb = 1 GiB per die

    def test_stack_data_capacity_is_8gib(self, geometry):
        assert geometry.data_bytes == 8 << 30

    def test_tsv_counts(self, geometry):
        assert geometry.data_tsvs_per_channel == 256
        assert geometry.addr_tsvs_per_channel == 24

    def test_address_bit_widths(self, geometry):
        assert geometry.row_address_bits == 16
        assert geometry.col_address_bits == 14

    def test_subarrays(self, geometry):
        assert geometry.subarrays_per_bank == 8
        assert geometry.rows_per_subarray == 8192

    def test_lifetime_is_seven_years(self):
        assert LIFETIME_HOURS == 7 * 365 * 24

    def test_scrub_interval_is_12_hours(self):
        assert SCRUB_INTERVAL_HOURS == 12.0


class TestValidation:
    def test_rejects_non_power_of_two_rows(self):
        with pytest.raises(ConfigurationError):
            StackGeometry(rows_per_bank=1000)

    def test_rejects_row_not_multiple_of_line(self):
        with pytest.raises(ConfigurationError):
            StackGeometry(row_bytes=2048, line_bytes=100)

    def test_rejects_rows_not_divisible_by_subarrays(self):
        with pytest.raises(ConfigurationError):
            StackGeometry(rows_per_bank=65536, subarrays_per_bank=7)

    def test_rejects_zero_dies(self):
        with pytest.raises(ConfigurationError):
            StackGeometry(data_dies=0)

    def test_rejects_negative_metadata_dies(self):
        with pytest.raises(ConfigurationError):
            StackGeometry(metadata_dies=-1)

    def test_check_die_bounds(self, geometry):
        geometry.check_die(0)
        geometry.check_die(8)  # the metadata die
        with pytest.raises(GeometryError):
            geometry.check_die(9)
        with pytest.raises(GeometryError):
            geometry.check_die(8, allow_metadata=False)
        with pytest.raises(GeometryError):
            geometry.check_die(-1)

    def test_check_bank_row_col(self, geometry):
        geometry.check_bank(7)
        geometry.check_row(65535)
        geometry.check_col_bit(16383)
        with pytest.raises(GeometryError):
            geometry.check_bank(8)
        with pytest.raises(GeometryError):
            geometry.check_row(65536)
        with pytest.raises(GeometryError):
            geometry.check_col_bit(16384)


class TestMetadataDie:
    def test_metadata_die_is_highest_index(self, geometry):
        assert geometry.metadata_die == 8
        assert geometry.is_metadata_die(8)
        assert not geometry.is_metadata_die(0)
        assert not geometry.is_metadata_die(7)

    def test_no_metadata_die_raises(self):
        geom = StackGeometry(metadata_dies=0)
        with pytest.raises(ConfigurationError):
            _ = geom.metadata_die


class TestSmallGeometry:
    def test_small_is_consistent(self, small_geometry):
        assert small_geometry.data_dies == 4
        assert small_geometry.total_dies == 5
        assert small_geometry.lines_per_row == 4
        assert small_geometry.rows_per_subarray == 16

    def test_small_accepts_overrides(self):
        geom = StackGeometry.small(banks_per_die=2)
        assert geom.banks_per_die == 2

    def test_with_returns_modified_copy(self, geometry):
        changed = geometry.with_(data_dies=4)
        assert changed.data_dies == 4
        assert geometry.data_dies == 8

    def test_subarray_of_row(self, small_geometry):
        assert small_geometry.subarray_of_row(0) == 0
        assert small_geometry.subarray_of_row(15) == 0
        assert small_geometry.subarray_of_row(16) == 1
        assert small_geometry.subarray_of_row(63) == 3
