"""MetricsRegistry: the merge monoid, snapshots, and serialization.

The whole telemetry design rests on one algebraic fact: ``merge`` is a
commutative monoid over registries (counters add, gauges max, histograms
with identical edges add bucket-wise, the empty registry is the
identity).  That is what lets per-shard metrics flow through
``ReliabilityResult`` merges in any order — workers=1 and workers=4
campaigns then agree byte-for-byte.  These tests pin the laws with
hypothesis-generated registries.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MergeError
from repro.telemetry.registry import Histogram, MetricsRegistry, Timer

EDGES = (1.0, 2.0, 5.0, 10.0)

COUNTER_NAMES = ("engine/trials", "parity/checks", "dds/row_spared")
GAUGE_NAMES = ("perf/exec_cycles", "campaign/high_water")
HISTOGRAM_NAMES = ("engine/faults_per_trial", "campaign/shard_seconds")


@st.composite
def registries(draw):
    """A registry with arbitrary counts over a fixed name universe."""
    registry = MetricsRegistry()
    for name in COUNTER_NAMES:
        n = draw(st.integers(0, 1000))
        if n:
            registry.inc(name, n)
    for name in GAUGE_NAMES:
        if draw(st.booleans()):
            registry.gauge_set(name, draw(st.floats(0, 1e6)))
    for name in HISTOGRAM_NAMES:
        # Integer-valued observations keep the running float totals
        # exactly associative; real campaign metrics are event counts
        # and cycle counts, so this matches what production records.
        for value in draw(
            st.lists(st.integers(0, 20), max_size=8)
        ):
            registry.observe(name, float(value), edges=EDGES)
    return registry


class TestMergeMonoid:
    @settings(max_examples=60, deadline=None)
    @given(registries(), registries())
    def test_commutative(self, a, b):
        assert a.merge(b).to_dict() == b.merge(a).to_dict()

    @settings(max_examples=60, deadline=None)
    @given(registries(), registries(), registries())
    def test_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_dict() == right.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(registries())
    def test_empty_is_identity(self, a):
        empty = MetricsRegistry()
        assert a.merge(empty).to_dict() == a.to_dict()
        assert empty.merge(a).to_dict() == a.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(registries(), registries())
    def test_merge_is_nondestructive(self, a, b):
        before_a, before_b = a.to_dict(), b.to_dict()
        a.merge(b)
        assert a.to_dict() == before_a
        assert b.to_dict() == before_b

    def test_counters_add_and_gauges_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 3)
        b.inc("x", 4)
        a.gauge_set("g", 2.0)
        b.gauge_set("g", 7.0)
        merged = a.merge(b)
        assert merged.counter("x") == 7
        assert merged.gauge("g") == 7.0

    def test_histogram_edge_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1.0, edges=(1.0, 2.0))
        b.observe("h", 1.0, edges=(1.0, 3.0))
        with pytest.raises(MergeError):
            a.merge(b)

    def test_merge_all_of_nothing_is_empty(self):
        assert MetricsRegistry.merge_all([]).is_empty


class TestSerialization:
    @settings(max_examples=60, deadline=None)
    @given(registries())
    def test_round_trip(self, registry):
        data = registry.to_dict()
        assert MetricsRegistry.from_dict(data).to_dict() == data

    @settings(max_examples=30, deadline=None)
    @given(registries())
    def test_to_dict_is_json_stable(self, registry):
        text = json.dumps(registry.to_dict(), sort_keys=True)
        parsed = MetricsRegistry.from_dict(json.loads(text))
        assert json.dumps(parsed.to_dict(), sort_keys=True) == text

    def test_histogram_round_trip_preserves_extremes(self):
        h = Histogram(edges=EDGES)
        for value in (0.5, 3.0, 42.0):
            h.observe(value)
        back = Histogram.from_dict(h.to_dict())
        assert back.min_value == 0.5
        assert back.max_value == 42.0
        assert back.total == pytest.approx(45.5)

    def test_timer_round_trip(self):
        t = Timer()
        t.record(0.25)
        t.record(0.75)
        back = Timer.from_dict(t.to_dict())
        assert back.count == 2
        assert back.total_seconds == pytest.approx(1.0)


class TestDeterministicSnapshot:
    def test_strips_timers_and_volatile_entries(self):
        registry = MetricsRegistry()
        registry.inc("engine/trials", 5)
        registry.record_seconds("campaign/shard_time", 0.5)
        registry.gauge_set("campaign/load", 0.9, volatile=True)
        registry.observe("campaign/shard_seconds", 0.5,
                         edges=EDGES, volatile=True)
        registry.observe("engine/faults_per_trial", 2.0, edges=EDGES)
        snapshot = registry.deterministic_snapshot()
        assert snapshot.counter("engine/trials") == 5
        assert snapshot.timer("campaign/shard_time") is None
        assert snapshot.gauge("campaign/load") is None
        assert snapshot.histogram("campaign/shard_seconds") is None
        assert snapshot.histogram("engine/faults_per_trial") is not None

    def test_volatile_counter_stripped_but_merges(self):
        registry = MetricsRegistry()
        registry.inc("engine/incremental_hits", 3, volatile=True)
        registry.inc("engine/trials", 1)
        assert registry.counter("engine/incremental_hits") == 3
        snapshot = registry.deterministic_snapshot()
        assert snapshot.counter("engine/incremental_hits") == 0
        assert snapshot.counter("engine/trials") == 1
        other = MetricsRegistry()
        other.inc("engine/incremental_hits", 2, volatile=True)
        merged = registry.merge(other)
        assert merged.counter("engine/incremental_hits") == 5
        assert merged.deterministic_snapshot().counter(
            "engine/incremental_hits"
        ) == 0

    def test_snapshot_of_snapshot_is_fixed_point(self):
        registry = MetricsRegistry()
        registry.inc("a", 1)
        registry.record_seconds("t", 1.0)
        once = registry.deterministic_snapshot()
        assert once.deterministic_snapshot().to_dict() == once.to_dict()


class TestAccessors:
    def test_absent_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0

    def test_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.inc("parity/corrected/dim1", 3)
        registry.inc("parity/corrected/dim2", 1)
        registry.inc("parity/checks", 9)
        assert registry.counters_with_prefix("parity/corrected/dim") == {
            "parity/corrected/dim1": 3,
            "parity/corrected/dim2": 1,
        }

    def test_render_mentions_every_name(self):
        registry = MetricsRegistry()
        registry.inc("engine/trials", 2)
        registry.gauge_set("perf/exec_cycles", 10.0)
        registry.observe("engine/faults_per_trial", 1.0, edges=EDGES)
        registry.record_seconds("campaign/shard_time", 0.1)
        text = registry.render()
        for name in registry.names():
            assert name in text


class TestThreadSafety:
    """Recording APIs are shared by scheduler worker threads; hammering
    them concurrently must never drop an update (REPRO009 regression:
    the registry now serializes writes behind an internal RLock)."""

    THREADS = 8
    ROUNDS = 2000

    def _hammer(self, work):
        import threading

        barrier = threading.Barrier(self.THREADS)

        def body():
            barrier.wait()
            for i in range(self.ROUNDS):
                work(i)

        threads = [
            threading.Thread(target=body) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_concurrent_inc_loses_no_updates(self):
        registry = MetricsRegistry()
        self._hammer(lambda i: registry.inc("service/jobs", 1))
        assert registry.counter("service/jobs") == self.THREADS * self.ROUNDS

    def test_concurrent_observe_loses_no_samples(self):
        registry = MetricsRegistry()
        registry.declare_histogram("lat", edges=[1.0, 10.0])
        self._hammer(lambda i: registry.observe("lat", float(i % 20)))
        hist = registry.histogram("lat")
        assert hist.count == self.THREADS * self.ROUNDS
        assert sum(hist.counts) == hist.count

    def test_concurrent_timers_lose_no_durations(self):
        registry = MetricsRegistry()
        self._hammer(lambda i: registry.record_seconds("phase", 0.001))
        assert registry.timer("phase").count == self.THREADS * self.ROUNDS
