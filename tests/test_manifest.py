"""Tests for run-provenance manifests.

Covers the dataclass contract (serialization round-trip, schema guard),
the determinism boundary (runner-attached manifests identical for any
worker count, no spec hash, no volatile fields), the merge rule
(manifests survive only when both operands agree), and the store-side
spec-hash stamping.
"""

import json

import pytest

from repro.errors import TelemetryError
from repro.faults.rates import FailureRates
from repro.reliability.montecarlo import EngineConfig
from repro.reliability.parallel import (
    CHECKPOINT_VERSION,
    ParallelLifetimeRunner,
)
from repro.reliability.results import ReliabilityResult
from repro.schemes import SCHEMES
from repro.service.jobs import CampaignSpec
from repro.service.store import ResultStore
from repro.stack.geometry import StackGeometry
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    schemes_registry_hash,
    volatile_provenance,
)


def make_manifest(**overrides):
    fields = dict(
        scheme="SECDED (ECC-DIMM like)",
        seed=5,
        trials=300,
        shard_size=100,
        sampling="naive",
        target_ci_width=None,
        checkpoint_version=CHECKPOINT_VERSION,
        schemes_hash=schemes_registry_hash(),
        package_version="1.0.0",
    )
    fields.update(overrides)
    return RunManifest(**fields)


def run_campaign(workers, seed=7, trials=120):
    geometry = StackGeometry()
    runner = ParallelLifetimeRunner(
        geometry,
        FailureRates.paper_baseline(tsv_device_fit=0.0),
        SCHEMES["secded"](geometry),
        EngineConfig(),
        root_seed=seed,
        workers=workers,
        shard_size=40,
    )
    return runner.run(trials=trials)


class TestRunManifestContract:
    def test_round_trip(self):
        manifest = make_manifest()
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_round_trip_with_spec_hash(self):
        manifest = make_manifest().with_spec_hash("abc123")
        data = manifest.to_dict()
        assert data["spec_hash"] == "abc123"
        assert RunManifest.from_dict(data) == manifest

    def test_spec_hash_omitted_when_unset(self):
        assert "spec_hash" not in make_manifest().to_dict()

    def test_schema_field(self):
        assert make_manifest().to_dict()["schema"] == MANIFEST_SCHEMA

    def test_from_dict_rejects_wrong_schema(self):
        data = make_manifest().to_dict()
        data["schema"] = 99
        with pytest.raises(TelemetryError, match="unsupported manifest"):
            RunManifest.from_dict(data)

    def test_from_dict_rejects_missing_keys(self):
        data = make_manifest().to_dict()
        del data["schemes_hash"]
        with pytest.raises(TelemetryError, match="schemes_hash"):
            RunManifest.from_dict(data)

    def test_describe_lines(self):
        lines = make_manifest().describe()
        text = "\n".join(lines)
        assert "SECDED" in text
        assert f"checkpoint ver  {CHECKPOINT_VERSION}" in text
        assert "spec hash" not in text
        stamped = make_manifest().with_spec_hash("deadbeef").describe()
        assert any("deadbeef" in line for line in stamped)

    def test_schemes_hash_is_stable_and_short(self):
        assert schemes_registry_hash() == schemes_registry_hash()
        assert len(schemes_registry_hash()) == 16

    def test_serialized_core_has_no_volatile_fields(self):
        data = make_manifest().to_dict()
        for banned in ("hostname", "unix_time", "pid", "platform"):
            assert banned not in data

    def test_volatile_provenance_is_display_only_side(self):
        context = volatile_provenance()
        assert set(context) == {
            "hostname", "platform", "python", "pid", "unix_time"
        }


class TestRunnerAttachment:
    def test_runner_attaches_manifest(self):
        result = run_campaign(workers=1)
        manifest = result.manifest
        assert manifest is not None
        assert manifest.seed == 7
        assert manifest.trials == 120
        assert manifest.shard_size == 40
        assert manifest.checkpoint_version == CHECKPOINT_VERSION
        assert manifest.schemes_hash == schemes_registry_hash()
        assert manifest.spec_hash is None

    def test_workers_1_vs_4_byte_identical_including_manifest(self):
        a = run_campaign(workers=1)
        b = run_campaign(workers=4)
        assert a.manifest == b.manifest
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_manifest_survives_result_round_trip(self):
        result = run_campaign(workers=1)
        rebuilt = ReliabilityResult.from_dict(result.to_dict())
        assert rebuilt.manifest == result.manifest
        assert rebuilt.to_dict() == result.to_dict()


class TestMergeRule:
    def make_result(self, manifest, trials=50, failures=3):
        return ReliabilityResult(
            scheme_name="s",
            trials=trials,
            failures=failures,
            lifetime_hours=61320.0,
            manifest=manifest,
        )

    def test_agreeing_manifests_survive_merge(self):
        manifest = make_manifest()
        merged = self.make_result(manifest).merge(self.make_result(manifest))
        assert merged.manifest == manifest

    def test_disagreeing_manifests_drop_to_none(self):
        merged = self.make_result(make_manifest(seed=1)).merge(
            self.make_result(make_manifest(seed=2))
        )
        assert merged.manifest is None

    def test_identity_merge_preserves_manifest(self):
        manifest = make_manifest()
        result = self.make_result(manifest)
        assert ReliabilityResult.identity().merge(result).manifest == manifest
        assert result.merge(ReliabilityResult.identity()).manifest == manifest

    def test_manifest_excluded_from_equality(self):
        with_manifest = self.make_result(make_manifest())
        without = self.make_result(None)
        assert with_manifest == without


class TestStoreStamping:
    def test_store_entry_carries_spec_hash_result_does_not(self, tmp_path):
        spec = CampaignSpec(scheme="secded", trials=120, seed=7,
                            shard_size=40)
        result = run_campaign(workers=1)
        store = ResultStore(tmp_path / "store")
        key = store.put(spec, result)
        entry = store.entry(spec)
        # Entry-level manifest: stamped with the content address.
        assert entry["manifest"]["spec_hash"] == key
        # Result-level manifest: deliberately address-free, so a service
        # run stays byte-identical to the equivalent direct run.
        assert "spec_hash" not in entry["result"]["manifest"]
        fetched = store.get(spec)
        assert fetched.manifest is not None
        assert fetched.manifest.spec_hash is None
        assert fetched.to_dict() == result.to_dict()
