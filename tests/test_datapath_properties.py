"""Property-based tests on the functional Citadel datapath: any single
DRAM fault anywhere, with any data, must be survivable (the fail-in-place
guarantee), and writes must round-trip under fault-free operation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datapath import CitadelDatapath
from repro.faults.types import (
    Permanence,
    make_bank_fault,
    make_bit_fault,
    make_column_fault,
    make_row_fault,
    make_subarray_fault,
    make_word_fault,
)
from repro.stack.geometry import StackGeometry

GEOM = StackGeometry.small()
P = Permanence.PERMANENT


@st.composite
def dram_faults(draw):
    kind = draw(st.sampled_from(
        ["bit", "word", "row", "column", "subarray", "bank"]
    ))
    die = draw(st.integers(0, GEOM.data_dies - 1))
    bank = draw(st.integers(0, GEOM.banks_per_die - 1))
    row = draw(st.integers(0, GEOM.rows_per_bank - 1))
    col = draw(st.integers(0, GEOM.row_bits - 1))
    if kind == "bit":
        return make_bit_fault(GEOM, die, bank, row, col, P)
    if kind == "word":
        word = draw(st.integers(0, GEOM.row_bits // 32 - 1))
        return make_word_fault(GEOM, die, bank, row, word, P)
    if kind == "row":
        return make_row_fault(GEOM, die, bank, row, P)
    if kind == "column":
        return make_column_fault(GEOM, die, bank, col, P)
    if kind == "subarray":
        sub = draw(st.integers(0, GEOM.subarrays_per_bank - 1))
        return make_subarray_fault(GEOM, die, bank, sub, P)
    return make_bank_fault(GEOM, die, bank, P)


def payload(seed: int) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(64))


class TestFailInPlaceProperty:
    @given(dram_faults(), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_any_single_dram_fault_survivable(self, fault, seed):
        """3DP (+ DDS) corrects every single DRAM fault the paper's
        taxonomy can produce, for arbitrary data."""
        dp = CitadelDatapath(geometry=GEOM, rng=random.Random(0))
        addresses = [(seed + i * 977) % dp.num_lines for i in range(24)]
        addresses = sorted(set(addresses))
        for a in addresses:
            dp.write(a, payload(a ^ seed))
        dp.inject(fault)
        for a in addresses:
            assert dp.read(a) == payload(a ^ seed)
        assert dp.stats.uncorrectable == 0

    @given(st.integers(0, 2**31), st.binary(min_size=64, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_fault_free_roundtrip(self, raw_addr, data):
        dp = CitadelDatapath(geometry=GEOM, rng=random.Random(0))
        address = raw_addr % dp.num_lines
        dp.write(address, data)
        assert dp.read(address) == data
        assert dp.stats.crc_mismatches == 0

    @given(st.integers(0, 2**31), st.binary(min_size=64, max_size=64),
           st.binary(min_size=64, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_overwrite_keeps_parity_consistent(self, raw_addr, first, second):
        """Overwriting a line must keep all three parity dimensions
        consistent: a subsequent row fault on that line is recoverable."""
        dp = CitadelDatapath(geometry=GEOM, rng=random.Random(0))
        address = raw_addr % dp.num_lines
        dp.write(address, first)
        dp.write(address, second)
        die, bank, row, _ = dp._locate(address)
        dp.inject(make_row_fault(GEOM, die, bank, row, P))
        assert dp.read(address) == second
