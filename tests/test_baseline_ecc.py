"""Correctability of the comparator schemes: 6EC7ED BCH, RAID-5, SECDED
and 2D-ECC (§VIII, Figure 19)."""

import pytest

from repro.ecc.bch import BCHCode
from repro.ecc.parity2d import TwoDimECC
from repro.ecc.raid5 import RAID5
from repro.ecc.secded import SECDED
from repro.faults.types import (
    Permanence,
    make_addr_tsv_fault,
    make_bank_fault,
    make_bit_fault,
    make_column_fault,
    make_data_tsv_fault,
    make_row_fault,
    make_subarray_fault,
    make_word_fault,
)
from repro.stack.geometry import StackGeometry

P = Permanence.PERMANENT


@pytest.fixture
def geom():
    return StackGeometry()


class TestBCH:
    def test_bit_fault_correctable(self, geom):
        assert not BCHCode(geom).is_uncorrectable(
            [make_bit_fault(geom, 0, 0, 0, 0, P)]
        )

    def test_six_bits_same_line_correctable(self, geom):
        faults = [make_bit_fault(geom, 0, 0, 0, c, P) for c in range(6)]
        assert not BCHCode(geom).is_uncorrectable(faults)

    def test_seven_bits_same_line_fatal(self, geom):
        faults = [make_bit_fault(geom, 0, 0, 0, c, P) for c in range(7)]
        assert BCHCode(geom).is_uncorrectable(faults)

    def test_seven_bits_different_lines_correctable(self, geom):
        faults = [
            make_bit_fault(geom, 0, 0, 0, c * 512, P) for c in range(7)
        ]
        assert not BCHCode(geom).is_uncorrectable(faults)

    def test_word_fault_fatal(self, geom):
        """32 bad bits in one line >> t=6: BCH cannot correct
        large-granularity faults (§VIII-F)."""
        assert BCHCode(geom).is_uncorrectable([make_word_fault(geom, 0, 0, 0, 0, P)])

    def test_row_bank_fatal(self, geom):
        assert BCHCode(geom).is_uncorrectable([make_row_fault(geom, 0, 0, 0, P)])
        assert BCHCode(geom).is_uncorrectable([make_bank_fault(geom, 0, 0, P)])

    def test_column_fault_correctable(self, geom):
        # One bad bit per line.
        assert not BCHCode(geom).is_uncorrectable(
            [make_column_fault(geom, 0, 0, 0, P)]
        )

    def test_dtsv_two_bits_per_line_correctable(self, geom):
        assert not BCHCode(geom, t=6).is_uncorrectable(
            [make_data_tsv_fault(geom, 0, 0)]
        )

    def test_t_one_rejects_dtsv(self, geom):
        assert BCHCode(geom, t=1).is_uncorrectable([make_data_tsv_fault(geom, 0, 0)])

    def test_invalid_t(self, geom):
        with pytest.raises(ValueError):
            BCHCode(geom, t=0)

    def test_nested_not_double_counted(self, geom):
        row = make_row_fault(geom, 0, 0, 5, P)
        bit = make_bit_fault(geom, 0, 0, 5, 3, P)
        # row alone is already fatal; the point: covers() path executes.
        assert BCHCode(geom).is_uncorrectable([row, bit])
        col = make_column_fault(geom, 0, 0, 3, P)
        bit2 = make_bit_fault(geom, 0, 0, 9, 3, P)  # inside the column
        assert not BCHCode(geom).is_uncorrectable([col, bit2])


class TestRAID5:
    def test_single_bank_fault_correctable(self, geom):
        assert not RAID5(geom).is_uncorrectable([make_bank_fault(geom, 0, 0, P)])

    def test_tsv_fault_fatal(self, geom):
        assert RAID5(geom).is_uncorrectable([make_data_tsv_fault(geom, 0, 0)])
        assert RAID5(geom).is_uncorrectable([make_addr_tsv_fault(geom, 0, 0)])

    def test_two_faults_same_stripe_fatal(self, geom):
        a = make_row_fault(geom, 0, 0, 100, P)
        b = make_row_fault(geom, 1, 1, 100, P)
        assert RAID5(geom).is_uncorrectable([a, b])

    def test_two_faults_different_stripes_correctable(self, geom):
        a = make_row_fault(geom, 0, 0, 100, P)
        b = make_row_fault(geom, 1, 1, 101, P)
        assert not RAID5(geom).is_uncorrectable([a, b])

    def test_strip_granularity_ignores_columns(self, geom):
        """RAID reconstructs whole strips: two faults in one stripe are
        fatal even at disjoint columns (unlike bit-level parity)."""
        a = make_bit_fault(geom, 0, 0, 100, 5, P)
        b = make_bit_fault(geom, 1, 1, 100, 900, P)
        assert RAID5(geom).is_uncorrectable([a, b])

    def test_same_bank_two_faults_correctable(self, geom):
        a = make_bit_fault(geom, 0, 0, 100, 5, P)
        b = make_row_fault(geom, 0, 0, 100, P)
        assert not RAID5(geom).is_uncorrectable([a, b])

    def test_overhead(self, geom):
        assert RAID5(geom).storage_overhead_fraction() == pytest.approx(1 / 64)


class TestSECDED:
    def test_bit_fault_correctable(self, geom):
        assert not SECDED(geom).is_uncorrectable([make_bit_fault(geom, 0, 0, 0, 0, P)])

    def test_column_fault_correctable(self, geom):
        assert not SECDED(geom).is_uncorrectable(
            [make_column_fault(geom, 0, 0, 0, P)]
        )

    def test_word_fault_fatal(self, geom):
        assert SECDED(geom).is_uncorrectable([make_word_fault(geom, 0, 0, 0, 0, P)])

    def test_row_and_bank_fatal(self, geom):
        assert SECDED(geom).is_uncorrectable([make_row_fault(geom, 0, 0, 0, P)])
        assert SECDED(geom).is_uncorrectable([make_bank_fault(geom, 0, 0, P)])

    def test_two_bits_same_word_fatal(self, geom):
        a = make_bit_fault(geom, 0, 0, 0, 3, P)
        b = make_bit_fault(geom, 0, 0, 0, 60, P)
        assert SECDED(geom).is_uncorrectable([a, b])

    def test_two_bits_different_words_correctable(self, geom):
        a = make_bit_fault(geom, 0, 0, 0, 3, P)
        b = make_bit_fault(geom, 0, 0, 0, 67, P)
        assert not SECDED(geom).is_uncorrectable([a, b])

    def test_two_bits_different_rows_correctable(self, geom):
        a = make_bit_fault(geom, 0, 0, 0, 3, P)
        b = make_bit_fault(geom, 0, 0, 1, 3, P)
        assert not SECDED(geom).is_uncorrectable([a, b])

    def test_dtsv_correctable_per_word(self, geom):
        # Bits k and k+256 fall in different 64-bit words.
        assert not SECDED(geom).is_uncorrectable([make_data_tsv_fault(geom, 0, 0)])


class TestTwoDimECC:
    def test_small_faults_correctable(self, geom):
        code = TwoDimECC(geom)
        for fault in [
            make_bit_fault(geom, 0, 0, 0, 0, P),
            make_word_fault(geom, 0, 0, 0, 0, P),
            make_row_fault(geom, 0, 0, 0, P),
            make_column_fault(geom, 0, 0, 0, P),
        ]:
            assert not code.is_uncorrectable([fault]), fault

    def test_area_faults_fatal(self, geom):
        """§VIII-E: 2D-ECC only protects small granularity (32x32 cells);
        subarray and bank failures flood both syndrome dimensions."""
        assert TwoDimECC(geom).is_uncorrectable(
            [make_subarray_fault(geom, 0, 0, 0, P)]
        )
        assert TwoDimECC(geom).is_uncorrectable([make_bank_fault(geom, 0, 0, P)])

    def test_tsv_fault_fatal(self, geom):
        assert TwoDimECC(geom).is_uncorrectable([make_data_tsv_fault(geom, 0, 0)])

    def test_two_faults_same_bank_intersecting_fatal(self, geom):
        a = make_row_fault(geom, 0, 0, 5, P)
        b = make_bit_fault(geom, 0, 0, 5, 100, P)
        # The bit is nested in the row: absorbed, still correctable.
        assert not TwoDimECC(geom).is_uncorrectable([a, b])
        c = make_row_fault(geom, 0, 0, 6, P)
        # Two distinct rows share every column group: fatal.
        assert TwoDimECC(geom).is_uncorrectable([a, c])

    def test_two_faults_different_banks_correctable(self, geom):
        a = make_row_fault(geom, 0, 0, 5, P)
        b = make_row_fault(geom, 0, 1, 5, P)
        assert not TwoDimECC(geom).is_uncorrectable([a, b])

    def test_overhead_is_25_percent(self, geom):
        assert TwoDimECC(geom).storage_overhead_fraction() == pytest.approx(0.25)
