"""Unit tests for fault constructors: each fault kind must produce exactly
the footprint shape the paper describes (Figure 2, §V-B)."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.types import (
    Fault,
    FaultKind,
    Permanence,
    make_addr_tsv_fault,
    make_bank_fault,
    make_bit_fault,
    make_column_fault,
    make_data_tsv_fault,
    make_row_fault,
    make_subarray_fault,
    make_word_fault,
)
from repro.stack.geometry import StackGeometry


@pytest.fixture
def geom():
    return StackGeometry()


class TestDRAMFaultShapes:
    def test_bit_fault_is_one_bit(self, geom):
        f = make_bit_fault(geom, 2, 3, 100, 511, Permanence.TRANSIENT)
        assert f.kind is FaultKind.BIT
        assert f.footprint.total_bits() == 1
        assert f.footprint.contains(2, 3, 100, 511)

    def test_word_fault_is_32_adjacent_bits(self, geom):
        f = make_word_fault(geom, 0, 0, 5, 3, Permanence.PERMANENT)
        assert f.footprint.total_bits() == 32
        assert f.footprint.contains(0, 0, 5, 96)
        assert f.footprint.contains(0, 0, 5, 127)
        assert not f.footprint.contains(0, 0, 5, 128)
        assert not f.footprint.contains(0, 0, 6, 96)

    def test_row_fault_covers_whole_row(self, geom):
        f = make_row_fault(geom, 1, 2, 333, Permanence.PERMANENT)
        assert f.footprint.num_rows == 1
        assert f.footprint.num_cols == geom.row_bits
        assert f.footprint.total_bits() == geom.row_bits

    def test_column_fault_covers_every_row_of_bank(self, geom):
        f = make_column_fault(geom, 1, 2, 77, Permanence.PERMANENT)
        assert f.kind is FaultKind.COLUMN
        assert f.footprint.num_rows == geom.rows_per_bank
        assert f.footprint.num_cols == 1
        assert f.footprint.contains(1, 2, 0, 77)
        assert f.footprint.contains(1, 2, geom.rows_per_bank - 1, 77)

    def test_subarray_fault_covers_one_subarray(self, geom):
        f = make_subarray_fault(geom, 0, 0, 3, Permanence.PERMANENT)
        assert f.kind is FaultKind.SUBARRAY
        assert f.footprint.num_rows == geom.rows_per_subarray
        assert f.footprint.num_cols == geom.row_bits
        start = 3 * geom.rows_per_subarray
        assert f.footprint.contains(0, 0, start, 0)
        assert f.footprint.contains(0, 0, start + geom.rows_per_subarray - 1, 0)
        assert not f.footprint.contains(0, 0, start - 1, 0)

    def test_subarray_fault_validates_index(self, geom):
        with pytest.raises(ConfigurationError):
            make_subarray_fault(geom, 0, 0, geom.subarrays_per_bank,
                                Permanence.PERMANENT)

    def test_bank_fault_covers_whole_bank(self, geom):
        f = make_bank_fault(geom, 7, 7, Permanence.PERMANENT)
        assert f.footprint.num_rows == geom.rows_per_bank
        assert f.footprint.num_cols == geom.row_bits
        assert f.footprint.num_bank_instances == 1

    def test_faults_stay_within_one_bank(self, geom):
        for f in [
            make_bit_fault(geom, 0, 0, 0, 0, Permanence.TRANSIENT),
            make_row_fault(geom, 0, 0, 0, Permanence.TRANSIENT),
            make_column_fault(geom, 0, 0, 0, Permanence.TRANSIENT),
            make_subarray_fault(geom, 0, 0, 0, Permanence.TRANSIENT),
            make_bank_fault(geom, 0, 0, Permanence.TRANSIENT),
        ]:
            assert not f.footprint.spans_multiple_banks()


class TestDataTSVFault:
    """§V-B: DTSV-k corrupts bits k and k+256 of every cache line, in all
    banks of the die (burst length 2)."""

    def test_multi_bank(self, geom):
        f = make_data_tsv_fault(geom, 3, 1)
        assert f.kind is FaultKind.DATA_TSV
        assert f.footprint.dies == frozenset([3])
        assert f.footprint.banks == frozenset(range(8))
        assert f.footprint.spans_multiple_banks()

    def test_dtsv1_hits_bits_1_and_257_of_every_line(self, geom):
        f = make_data_tsv_fault(geom, 0, 1)
        for line in range(geom.lines_per_row):
            base = line * geom.line_bits
            assert f.footprint.contains(0, 0, 0, base + 1)
            assert f.footprint.contains(0, 0, 0, base + 257)
            assert not f.footprint.contains(0, 0, 0, base + 0)
            assert not f.footprint.contains(0, 0, 0, base + 2)
            assert not f.footprint.contains(0, 0, 0, base + 256)

    def test_two_bits_per_line(self, geom):
        f = make_data_tsv_fault(geom, 0, 100)
        # 2 bits per 512-bit line * 32 lines per row = 64 bits per row.
        assert f.footprint.num_cols == 64

    def test_covers_all_rows(self, geom):
        f = make_data_tsv_fault(geom, 0, 0)
        assert f.footprint.num_rows == geom.rows_per_bank

    def test_validates_channel_and_index(self, geom):
        with pytest.raises(ConfigurationError):
            make_data_tsv_fault(geom, 8, 0)
        with pytest.raises(ConfigurationError):
            make_data_tsv_fault(geom, 0, 256)

    def test_carries_channel_and_index(self, geom):
        f = make_data_tsv_fault(geom, 5, 42)
        assert f.channel == 5
        assert f.tsv_index == 42


class TestAddrTSVFault:
    """§V-B: a faulty ATSV makes half of the rows unreachable."""

    def test_half_the_rows(self, geom):
        f = make_addr_tsv_fault(geom, 0, 0, stuck_value=0)
        assert f.footprint.num_rows == geom.rows_per_bank // 2

    def test_unreachable_half_has_inverse_bit(self, geom):
        f = make_addr_tsv_fault(geom, 0, 3, stuck_value=0)
        # Stuck at 0: rows with bit 3 == 1 are unreachable.
        assert 0b1000 in f.footprint.rows
        assert 0b0000 not in f.footprint.rows

    def test_covers_all_banks_and_cols(self, geom):
        f = make_addr_tsv_fault(geom, 2, 5)
        assert f.footprint.banks == frozenset(range(8))
        assert f.footprint.num_cols == geom.row_bits

    def test_validates_index(self, geom):
        with pytest.raises(ConfigurationError):
            make_addr_tsv_fault(geom, 0, 24)

    def test_high_atsv_indices_map_onto_row_bits(self, geom):
        # ATSVs 16..23 address bank/column bits; the model folds them onto
        # row bits, preserving the half-memory blast radius.
        f = make_addr_tsv_fault(geom, 0, 20)
        assert f.footprint.num_rows == geom.rows_per_bank // 2


class TestFaultObject:
    def test_at_time_returns_copy(self, geom):
        f = make_bit_fault(geom, 0, 0, 0, 0, Permanence.TRANSIENT)
        g = f.at_time(55.0)
        assert g.time_hours == 55.0
        assert f.time_hours == 0.0
        assert g.footprint == f.footprint

    def test_permanence_flags(self, geom):
        t = make_bit_fault(geom, 0, 0, 0, 0, Permanence.TRANSIENT)
        p = make_bit_fault(geom, 0, 0, 0, 0, Permanence.PERMANENT)
        assert t.is_transient and not t.is_permanent
        assert p.is_permanent and not p.is_transient

    def test_uids_are_unique(self, geom):
        a = make_bit_fault(geom, 0, 0, 0, 0, Permanence.TRANSIENT)
        b = make_bit_fault(geom, 0, 0, 0, 0, Permanence.TRANSIENT)
        assert a.uid != b.uid

    def test_tsv_kind_flags(self, geom):
        assert make_data_tsv_fault(geom, 0, 0).kind.is_tsv
        assert make_addr_tsv_fault(geom, 0, 0).kind.is_tsv
        assert not make_bit_fault(geom, 0, 0, 0, 0, Permanence.TRANSIENT).kind.is_tsv
