"""Tests for the reprolint static-analysis framework and its six rules.

Each rule is exercised against three fixtures — violating, clean, and
suppressed — written into a temporary tree that mirrors the repository
layout (``src/repro/...``), so include/exclude path scoping is part of
what is tested.  A final test asserts the real tree lints clean.
"""

import io
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import lint_paths  # noqa: E402
from tools.reprolint.cli import main as reprolint_main  # noqa: E402
from tools.reprolint.engine import collect_suppressions  # noqa: E402
from tools.reprolint.reporters import JsonReporter, TextReporter  # noqa: E402
from tools.reprolint.rules import ALL_CHECKERS, checker_by_code  # noqa: E402


def lint_snippet(tmp_path, relpath, source, codes=None):
    """Write ``source`` at ``relpath`` under a scratch root and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    checkers = None
    if codes is not None:
        checkers = [checker_by_code(code)() for code in codes]
    return lint_paths([tmp_path], checkers=checkers, root=tmp_path)


def codes_of(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------- #
# Engine behavior
# ---------------------------------------------------------------------- #
class TestEngine:
    def test_syntax_error_becomes_pseudo_finding(self, tmp_path):
        findings = lint_snippet(tmp_path, "src/repro/bad.py", "def broken(:\n")
        assert codes_of(findings) == ["REPRO000"]
        assert "syntax error" in findings[0].message

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"], root=tmp_path)

    def test_findings_sorted_by_location(self, tmp_path):
        src = (
            "import random\n"
            "b = random.random()\n"
            "a = random.random()\n"
        )
        findings = lint_snippet(
            tmp_path, "src/repro/x.py", src, codes=["REPRO001"]
        )
        assert [f.line for f in findings] == [2, 3]

    def test_suppression_comments_in_strings_ignored(self):
        line, file_ = collect_suppressions(
            's = "# reprolint: disable=REPRO001"\n'
        )
        assert not line and not file_

    def test_line_suppression_parsing(self):
        line, _ = collect_suppressions(
            "x = 1  # reprolint: disable=REPRO002, REPRO003\n"
        )
        assert line == {1: {"REPRO002", "REPRO003"}}

    def test_bare_disable_suppresses_all(self, tmp_path):
        src = "import random\nx = random.random()  # reprolint: disable\n"
        assert lint_snippet(tmp_path, "src/repro/x.py", src) == []

    def test_file_suppression_only_in_header_window(self):
        header = "# reprolint: disable-file=REPRO001\n"
        _, file_ = collect_suppressions(header)
        assert file_ == {"REPRO001"}
        late = "\n" * 15 + header
        _, file_ = collect_suppressions(late)
        assert file_ == set()


# ---------------------------------------------------------------------- #
# REPRO001 — unseeded RNG
# ---------------------------------------------------------------------- #
class TestRepro001:
    def test_flags_unseeded_module_calls_and_constructors(self, tmp_path):
        src = (
            "import random\n"
            "r = random.Random()\n"
            "x = random.randrange(10)\n"
        )
        findings = lint_snippet(
            tmp_path, "src/repro/sim.py", src, codes=["REPRO001"]
        )
        assert codes_of(findings) == ["REPRO001", "REPRO001"]

    def test_clean_when_seeded(self, tmp_path):
        src = (
            "import random\n"
            "def run(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n"
        )
        assert lint_snippet(
            tmp_path, "src/repro/sim.py", src, codes=["REPRO001"]
        ) == []

    def test_cli_modules_exempt(self, tmp_path):
        src = "import random\nr = random.Random()\n"
        assert lint_snippet(
            tmp_path, "src/repro/cli.py", src, codes=["REPRO001"]
        ) == []

    def test_suppression(self, tmp_path):
        src = (
            "import random\n"
            "r = random.Random()  # reprolint: disable=REPRO001\n"
        )
        assert lint_snippet(
            tmp_path, "src/repro/sim.py", src, codes=["REPRO001"]
        ) == []

    def test_flags_unseeded_numpy_generator(self, tmp_path):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        findings = lint_snippet(
            tmp_path, "src/repro/sim.py", src, codes=["REPRO001"]
        )
        assert codes_of(findings) == ["REPRO001"]


# ---------------------------------------------------------------------- #
# REPRO002 — magic geometry literals
# ---------------------------------------------------------------------- #
class TestRepro002:
    def test_flags_magic_literal_in_expression(self, tmp_path):
        src = "def rows():\n    return 65536 // 4\n"
        findings = lint_snippet(
            tmp_path, "src/repro/stack/foo.py", src, codes=["REPRO002"]
        )
        assert codes_of(findings) == ["REPRO002"]

    def test_allows_all_caps_constant_definition(self, tmp_path):
        src = "ROWS_PER_BANK = 65536\nBITS = 8\n"
        assert lint_snippet(
            tmp_path, "src/repro/stack/foo.py", src, codes=["REPRO002"]
        ) == []

    def test_geometry_module_exempt(self, tmp_path):
        src = "def rows():\n    return 65536\n"
        assert lint_snippet(
            tmp_path, "src/repro/stack/geometry.py", src, codes=["REPRO002"]
        ) == []

    def test_tests_not_in_scope(self, tmp_path):
        src = "assert 2 ** 16 == 65536\n"
        assert lint_snippet(
            tmp_path, "tests/test_foo.py", src, codes=["REPRO002"]
        ) == []

    def test_file_level_suppression(self, tmp_path):
        src = (
            "# reprolint: disable-file=REPRO002 -- field arithmetic\n"
            "TABLE = [0] * 256\n"
            "def f(x):\n    return x % 256\n"
        )
        assert lint_snippet(
            tmp_path, "src/repro/stack/foo.py", src, codes=["REPRO002"]
        ) == []


# ---------------------------------------------------------------------- #
# REPRO003 — float equality
# ---------------------------------------------------------------------- #
class TestRepro003:
    def test_flags_float_literal_comparison(self, tmp_path):
        src = "def check(p):\n    return p == 0.5\n"
        findings = lint_snippet(
            tmp_path, "src/repro/reliability/foo.py", src, codes=["REPRO003"]
        )
        assert codes_of(findings) == ["REPRO003"]

    def test_flags_probability_name_comparison(self, tmp_path):
        src = "def same(prob_a, prob_b):\n    return prob_a != prob_b\n"
        findings = lint_snippet(
            tmp_path, "src/repro/ecc/foo.py", src, codes=["REPRO003"]
        )
        assert codes_of(findings) == ["REPRO003"]

    def test_int_comparison_clean(self, tmp_path):
        src = "def check(count):\n    return count == 4\n"
        assert lint_snippet(
            tmp_path, "src/repro/reliability/foo.py", src, codes=["REPRO003"]
        ) == []

    def test_out_of_scope_module_clean(self, tmp_path):
        src = "def check(p):\n    return p == 0.5\n"
        assert lint_snippet(
            tmp_path, "src/repro/perf/foo.py", src, codes=["REPRO003"]
        ) == []

    def test_suppression(self, tmp_path):
        src = (
            "def check(p):\n"
            "    return p == 0.0  # reprolint: disable=REPRO003\n"
        )
        assert lint_snippet(
            tmp_path, "src/repro/reliability/foo.py", src, codes=["REPRO003"]
        ) == []


# ---------------------------------------------------------------------- #
# REPRO004 — mutable default arguments
# ---------------------------------------------------------------------- #
class TestRepro004:
    def test_flags_mutable_literal_defaults(self, tmp_path):
        src = "def f(xs=[], m={}):\n    return xs, m\n"
        findings = lint_snippet(
            tmp_path, "src/repro/foo.py", src, codes=["REPRO004"]
        )
        assert codes_of(findings) == ["REPRO004", "REPRO004"]

    def test_flags_constructor_call_default(self, tmp_path):
        src = "def f(xs=list()):\n    return xs\n"
        findings = lint_snippet(
            tmp_path, "src/repro/foo.py", src, codes=["REPRO004"]
        )
        assert codes_of(findings) == ["REPRO004"]

    def test_flags_kwonly_and_lambda_defaults(self, tmp_path):
        src = "f = lambda xs=[]: xs\ndef g(*, m={}):\n    return m\n"
        findings = lint_snippet(
            tmp_path, "src/repro/foo.py", src, codes=["REPRO004"]
        )
        assert len(findings) == 2

    def test_none_and_tuple_defaults_clean(self, tmp_path):
        src = "def f(xs=None, t=(), s='x'):\n    return xs, t, s\n"
        assert lint_snippet(
            tmp_path, "src/repro/foo.py", src, codes=["REPRO004"]
        ) == []

    def test_applies_to_tests_too(self, tmp_path):
        src = "def helper(acc=[]):\n    return acc\n"
        findings = lint_snippet(
            tmp_path, "tests/test_foo.py", src, codes=["REPRO004"]
        )
        assert codes_of(findings) == ["REPRO004"]


# ---------------------------------------------------------------------- #
# REPRO005 — FIT vs per-hour probability unit discipline
# ---------------------------------------------------------------------- #
class TestRepro005:
    def test_flags_fit_plus_probability(self, tmp_path):
        src = (
            "def total(bank_fit, fail_prob):\n"
            "    return bank_fit + fail_prob\n"
        )
        findings = lint_snippet(
            tmp_path, "src/repro/reliability/foo.py", src, codes=["REPRO005"]
        )
        assert codes_of(findings) == ["REPRO005"]

    def test_flags_fit_compared_to_probability(self, tmp_path):
        src = (
            "def worse(row_fit, prob_per_hour):\n"
            "    return row_fit > prob_per_hour\n"
        )
        findings = lint_snippet(
            tmp_path, "src/repro/reliability/foo.py", src, codes=["REPRO005"]
        )
        assert codes_of(findings) == ["REPRO005"]

    def test_converted_sum_clean(self, tmp_path):
        src = (
            "FIT_TO_PER_HOUR = 1e-9\n"
            "def total(bank_fit, fail_prob):\n"
            "    return bank_fit * FIT_TO_PER_HOUR + fail_prob\n"
        )
        assert lint_snippet(
            tmp_path, "src/repro/reliability/foo.py", src, codes=["REPRO005"]
        ) == []

    def test_same_unit_sum_clean(self, tmp_path):
        src = (
            "def total(bank_fit, row_fit):\n"
            "    return bank_fit + row_fit\n"
        )
        assert lint_snippet(
            tmp_path, "src/repro/reliability/foo.py", src, codes=["REPRO005"]
        ) == []

    def test_suppression(self, tmp_path):
        src = (
            "def total(bank_fit, fail_prob):\n"
            "    return bank_fit + fail_prob  # reprolint: disable=REPRO005\n"
        )
        assert lint_snippet(
            tmp_path, "src/repro/reliability/foo.py", src, codes=["REPRO005"]
        ) == []


# ---------------------------------------------------------------------- #
# REPRO006 — dataclass physical-field validation
# ---------------------------------------------------------------------- #
class TestRepro006:
    VIOLATING = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Loc:\n"
        "    channel: int\n"
        "    bank: int\n"
    )

    def test_flags_missing_post_init(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "src/repro/stack/foo.py", self.VIOLATING,
            codes=["REPRO006"],
        )
        assert codes_of(findings) == ["REPRO006"]

    def test_clean_with_post_init(self, tmp_path):
        src = self.VIOLATING + (
            "    def __post_init__(self):\n"
            "        assert self.channel >= 0\n"
        )
        assert lint_snippet(
            tmp_path, "src/repro/stack/foo.py", src, codes=["REPRO006"]
        ) == []

    def test_non_physical_fields_clean(self, tmp_path):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Stats:\n"
            "    hits: int\n"
            "    misses: int\n"
        )
        assert lint_snippet(
            tmp_path, "src/repro/stack/foo.py", src, codes=["REPRO006"]
        ) == []

    def test_collection_fields_clean(self, tmp_path):
        src = (
            "from dataclasses import dataclass\n"
            "from typing import List\n"
            "@dataclass\n"
            "class Hist:\n"
            "    rows_per_bank: List[int]\n"
        )
        assert lint_snippet(
            tmp_path, "src/repro/stack/foo.py", src, codes=["REPRO006"]
        ) == []

    def test_suppression(self, tmp_path):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Loc:  # reprolint: disable=REPRO006\n"
            "    channel: int\n"
        )
        assert lint_snippet(
            tmp_path, "src/repro/stack/foo.py", src, codes=["REPRO006"]
        ) == []


# ---------------------------------------------------------------------- #
# REPRO007 — telemetry discipline in instrumented modules
# ---------------------------------------------------------------------- #
class TestRepro007:
    def test_flags_print_in_instrumented_module(self, tmp_path):
        src = "def report(x):\n    print(x)\n"
        findings = lint_snippet(
            tmp_path, "src/repro/reliability/foo.py", src, codes=["REPRO007"]
        )
        assert codes_of(findings) == ["REPRO007"]

    def test_flags_time_time(self, tmp_path):
        src = "import time\n\ndef now():\n    return time.time()\n"
        findings = lint_snippet(
            tmp_path, "src/repro/core/foo.py", src, codes=["REPRO007"]
        )
        assert codes_of(findings) == ["REPRO007"]

    def test_flags_from_time_import_time(self, tmp_path):
        src = "from time import time\n\ndef now():\n    return time()\n"
        findings = lint_snippet(
            tmp_path, "src/repro/perf/foo.py", src, codes=["REPRO007"]
        )
        assert codes_of(findings) == ["REPRO007"]

    def test_monotonic_is_allowed(self, tmp_path):
        src = "import time\n\ndef now():\n    return time.monotonic()\n"
        assert lint_snippet(
            tmp_path, "src/repro/reliability/foo.py", src, codes=["REPRO007"]
        ) == []

    def test_flags_print_in_ecc_kernel_module(self, tmp_path):
        # The incremental correctability kernels (src/repro/ecc/*) sit on
        # the Monte-Carlo hot path and are held to the same discipline.
        src = "def observe(f):\n    print(f)\n"
        findings = lint_snippet(
            tmp_path, "src/repro/ecc/foo.py", src, codes=["REPRO007"]
        )
        assert codes_of(findings) == ["REPRO007"]

    def test_uninstrumented_modules_exempt(self, tmp_path):
        src = "def report(x):\n    print(x)\n"
        assert lint_snippet(
            tmp_path, "src/repro/analysis/foo.py", src, codes=["REPRO007"]
        ) == []

    def test_telemetry_package_exempt(self, tmp_path):
        # console.py *is* the sanctioned output path; it may print.
        src = "import time\n\ndef stamp():\n    return time.time()\n"
        assert lint_snippet(
            tmp_path, "src/repro/telemetry/foo.py", src, codes=["REPRO007"]
        ) == []

    def test_service_package_is_instrumented(self, tmp_path):
        # The campaign service is long-lived and observable through
        # /metrics; its modules follow the same telemetry discipline.
        src = "def report(x):\n    print(x)\n"
        findings = lint_snippet(
            tmp_path, "src/repro/service/foo.py", src, codes=["REPRO007"]
        )
        assert codes_of(findings) == ["REPRO007"]

    def test_service_package_flags_wall_clock(self, tmp_path):
        src = "import time\n\ndef now():\n    return time.time()\n"
        findings = lint_snippet(
            tmp_path, "src/repro/service/foo.py", src, codes=["REPRO007"]
        )
        assert codes_of(findings) == ["REPRO007"]


# ---------------------------------------------------------------------- #
# Reporters and CLI
# ---------------------------------------------------------------------- #
class TestReporting:
    def _one_finding(self, tmp_path):
        return lint_snippet(
            tmp_path, "src/repro/foo.py", "def f(xs=[]):\n    return xs\n"
        )

    def test_text_reporter(self, tmp_path):
        out = io.StringIO()
        TextReporter(out).report(self._one_finding(tmp_path))
        text = out.getvalue()
        assert "src/repro/foo.py:1:" in text
        assert "REPRO004: 1" in text

    def test_text_reporter_clean(self):
        out = io.StringIO()
        TextReporter(out).report([])
        assert "clean" in out.getvalue()

    def test_json_reporter(self, tmp_path):
        out = io.StringIO()
        JsonReporter(out).report(self._one_finding(tmp_path))
        payload = json.loads(out.getvalue())
        assert payload["count"] == 1
        assert payload["by_code"] == {"REPRO004": 1}
        assert payload["findings"][0]["path"] == "src/repro/foo.py"

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "foo.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(xs=[]):\n    return xs\n")
        assert reprolint_main([str(bad), "--root", str(tmp_path)]) == 1
        bad.write_text("def f(xs=None):\n    return xs\n")
        assert reprolint_main([str(bad), "--root", str(tmp_path)]) == 0
        assert reprolint_main([str(tmp_path / "missing")]) == 2
        assert reprolint_main(["--select", "NOPE", str(bad)]) == 2
        capsys.readouterr()

    def test_cli_list_rules(self, capsys):
        assert reprolint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in ALL_CHECKERS:
            assert cls.code in out


# ---------------------------------------------------------------------- #
# The tree itself
# ---------------------------------------------------------------------- #
class TestRepositoryIsClean:
    def test_src_tests_benchmarks_lint_clean(self):
        paths = [
            REPO_ROOT / name
            for name in ("src", "tests", "benchmarks")
            if (REPO_ROOT / name).exists()
        ]
        findings = lint_paths(paths, root=REPO_ROOT)
        assert findings == [], "\n".join(f.render() for f in findings)
