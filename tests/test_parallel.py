"""Tests for the parallel sharded Monte-Carlo runner.

Covers the shard plan, worker-count independence, checkpoint/resume
round-trips, the wall-clock budget, graceful interrupt draining, early
stopping, and fault tolerance when a worker crashes mid-campaign.
"""

import json

import pytest

import repro.reliability.parallel as parallel_mod
from repro.core.parity3dp import make_1dp
from repro.errors import CheckpointError, ContractViolation
from repro.faults.rates import FailureRates
from repro.reliability import (
    CrashInjection,
    EarlyStopPolicy,
    ParallelLifetimeRunner,
    ReliabilityResult,
    shard_plan,
)
from repro.reliability.montecarlo import EngineConfig
from repro.rng import derive_seed

#: High-ish fault rates so a few hundred trials produce failures.
RATES = FailureRates.paper_baseline(tsv_device_fit=100.0)

TRIALS = 800
SHARD = 200


def make_runner(geometry, **kwargs):
    kwargs.setdefault("root_seed", 42)
    kwargs.setdefault("shard_size", SHARD)
    return ParallelLifetimeRunner(
        geometry, RATES, make_1dp(geometry), EngineConfig(), **kwargs
    )


class TestShardPlan:
    def test_covers_trials_exactly(self):
        plan = shard_plan(1000, 300, root_seed=7)
        assert [s.trials for s in plan] == [300, 300, 300, 100]
        assert [s.index for s in plan] == [0, 1, 2, 3]

    def test_seeds_derived_from_root(self):
        plan = shard_plan(600, 200, root_seed=7)
        assert [s.seed for s in plan] == [
            derive_seed(7, "shard", i) for i in range(3)
        ]

    def test_independent_of_anything_else(self):
        assert shard_plan(1000, 300, 7) == shard_plan(1000, 300, 7)
        assert shard_plan(1000, 300, 7) != shard_plan(1000, 300, 8)

    def test_zero_trials_empty_plan(self):
        assert shard_plan(0, 100, 1) == []

    def test_invalid_plan_rejected(self):
        with pytest.raises(ContractViolation):
            shard_plan(100, 0, 1)
        with pytest.raises(ContractViolation):
            shard_plan(-1, 100, 1)


class TestWorkerCountIndependence:
    def test_two_workers_match_serial(self, geometry):
        serial = make_runner(geometry, workers=1).run(trials=TRIALS)
        pooled = make_runner(geometry, workers=2).run(trials=TRIALS)
        assert serial == pooled

    def test_matches_merged_per_shard_serial_runs(self, geometry):
        """The pooled aggregate is exactly the merge of the plan's
        shards run one by one through the serial engine."""
        from repro.reliability.montecarlo import LifetimeSimulator

        pooled = make_runner(geometry, workers=2).run(trials=TRIALS)
        shards = []
        for spec in shard_plan(TRIALS, SHARD, root_seed=42):
            sim = LifetimeSimulator(
                geometry, RATES, make_1dp(geometry), EngineConfig(),
                seed=spec.seed,
            )
            shards.append(
                sim.run(trials=spec.trials, min_faults=pooled.min_faults)
            )
        assert ReliabilityResult.merge_all(shards) == pooled

    def test_zero_trials(self, geometry):
        result = make_runner(geometry, workers=1).run(trials=0)
        assert result.trials == 0 and result.failures == 0


class TestCheckpointResume:
    def test_checkpoint_written_and_resumable(self, geometry, tmp_path):
        cp = tmp_path / "cp.json"
        reference = make_runner(geometry, workers=1).run(trials=TRIALS)
        make_runner(geometry, workers=1, checkpoint_path=cp).run(trials=TRIALS)
        assert cp.exists()
        runner = make_runner(
            geometry, workers=1, checkpoint_path=cp, resume=True
        )
        resumed = runner.run(trials=TRIALS)
        assert resumed == reference
        assert runner.last_report.resumed_shards == TRIALS // SHARD
        assert runner.last_report.completed_shards == 0

    def test_resume_after_crash_equals_uninterrupted(self, geometry, tmp_path):
        cp = tmp_path / "cp.json"
        crashed = make_runner(
            geometry, workers=1, checkpoint_path=cp,
            crash_injection=CrashInjection(raise_on=frozenset({1})),
        )
        partial = crashed.run(trials=TRIALS)
        assert partial.trials == TRIALS - SHARD  # shard 1 missing
        assert crashed.last_report.failed_shards == [1]
        assert crashed.last_report.partial

        resumed = make_runner(
            geometry, workers=1, checkpoint_path=cp, resume=True
        ).run(trials=TRIALS)
        reference = make_runner(geometry, workers=1).run(trials=TRIALS)
        assert resumed == reference

    def test_resume_after_budget_exhaustion(self, geometry, tmp_path):
        cp = tmp_path / "cp.json"
        budgeted = make_runner(
            geometry, workers=1, checkpoint_path=cp, time_budget_s=1e-9
        )
        partial = budgeted.run(trials=TRIALS)
        assert partial.trials == 0
        assert budgeted.last_report.budget_exhausted
        assert budgeted.last_report.partial

        resumed = make_runner(
            geometry, workers=1, checkpoint_path=cp, resume=True
        ).run(trials=TRIALS)
        assert resumed == make_runner(geometry, workers=1).run(trials=TRIALS)

    def test_foreign_checkpoint_rejected(self, geometry, tmp_path):
        cp = tmp_path / "cp.json"
        make_runner(geometry, workers=1, checkpoint_path=cp).run(trials=TRIALS)
        other = make_runner(
            geometry, workers=1, root_seed=43, checkpoint_path=cp, resume=True
        )
        with pytest.raises(CheckpointError):
            other.run(trials=TRIALS)

    def test_corrupt_checkpoint_rejected(self, geometry, tmp_path):
        cp = tmp_path / "cp.json"
        cp.write_text("{not json")
        with pytest.raises(CheckpointError):
            make_runner(
                geometry, workers=1, checkpoint_path=cp, resume=True
            ).run(trials=TRIALS)

    def test_checkpoint_is_valid_json_shard_table(self, geometry, tmp_path):
        cp = tmp_path / "cp.json"
        make_runner(geometry, workers=1, checkpoint_path=cp).run(trials=TRIALS)
        payload = json.loads(cp.read_text())
        assert sorted(payload["shards"]) == ["0", "1", "2", "3"]
        shard0 = ReliabilityResult.from_dict(payload["shards"]["0"])
        assert shard0.trials == SHARD


class TestFaultTolerance:
    def test_worker_exception_yields_accurate_partial(self, geometry):
        runner = make_runner(
            geometry, workers=2,
            crash_injection=CrashInjection(raise_on=frozenset({2})),
        )
        result = runner.run(trials=TRIALS)
        report = runner.last_report
        assert report.failed_shards == [2]
        assert report.merged_shards == 3
        # No double counting, no hang: exactly the three surviving
        # shards' trials are reported.
        assert result.trials == TRIALS - SHARD
        assert result.failures <= result.trials

    def test_hard_worker_death_yields_partial_not_hang(self, geometry):
        runner = make_runner(
            geometry, workers=2,
            crash_injection=CrashInjection(exit_on=frozenset({1})),
        )
        result = runner.run(trials=TRIALS)
        report = runner.last_report
        assert report.pool_broken
        assert report.partial
        assert 1 in report.failed_shards
        # Trial count matches exactly the shards that completed.
        assert result.trials == SHARD * report.merged_shards
        assert result.trials < TRIALS


class TestInterrupt:
    def test_keyboard_interrupt_drains_to_partial(self, geometry, monkeypatch):
        real_run_shard = parallel_mod._run_shard
        seen = []

        def interrupting(task):
            if task.spec.index == 2:
                raise KeyboardInterrupt
            seen.append(task.spec.index)
            return real_run_shard(task)

        monkeypatch.setattr(parallel_mod, "_run_shard", interrupting)
        runner = make_runner(geometry, workers=1)
        result = runner.run(trials=TRIALS)
        assert runner.last_report.interrupted
        assert runner.last_report.partial
        assert result.trials == 2 * SHARD
        assert seen == [0, 1]

    def test_interrupt_checkpoints_completed_shards(
        self, geometry, tmp_path, monkeypatch
    ):
        real_run_shard = parallel_mod._run_shard

        def interrupting(task):
            if task.spec.index == 1:
                raise KeyboardInterrupt
            return real_run_shard(task)

        cp = tmp_path / "cp.json"
        monkeypatch.setattr(parallel_mod, "_run_shard", interrupting)
        make_runner(geometry, workers=1, checkpoint_path=cp).run(trials=TRIALS)
        monkeypatch.setattr(parallel_mod, "_run_shard", real_run_shard)
        resumed = make_runner(
            geometry, workers=1, checkpoint_path=cp, resume=True
        ).run(trials=TRIALS)
        assert resumed == make_runner(geometry, workers=1).run(trials=TRIALS)


class TestEarlyStop:
    POLICY = EarlyStopPolicy(rel_halfwidth=0.9, min_failures=3)

    def test_stops_on_prefix_and_is_deterministic(self, geometry):
        serial = make_runner(
            geometry, workers=1, shard_size=100, early_stop=self.POLICY
        )
        pooled = make_runner(
            geometry, workers=2, shard_size=100, early_stop=self.POLICY
        )
        a = serial.run(trials=4000)
        b = pooled.run(trials=4000)
        assert serial.last_report.stopped_early
        assert a == b
        assert a.trials < 4000
        # An early stop is a deliberate decision, not a partial failure.
        assert not serial.last_report.partial

    def test_policy_requires_failure_floor(self):
        tight = EarlyStopPolicy(rel_halfwidth=0.5, min_failures=10)
        few = ReliabilityResult(
            scheme_name="x", trials=1000, failures=2, stratum_weight=1.0
        )
        assert not tight.satisfied(few)

    def test_policy_validates_parameters(self):
        with pytest.raises(ContractViolation):
            EarlyStopPolicy(rel_halfwidth=0.0)


class TestStoppingResume:
    """Anytime-valid stopping x checkpoint/resume (ISSUE 7 satellite).

    A stopped importance-sampled campaign resumed from a checkpoint must
    reach the *same* stopping decision and produce byte-identical results
    as an uninterrupted run.  The stop index is a pure function of the
    contiguous merged prefix, so neither the interrupt point nor the
    worker count may leak into the outcome.
    """

    #: Calibrated so the confidence sequence fires at shard 7 of 20 for
    #: this geometry/rates/seed -- early enough that an interrupt at
    #: shard 2 lands well before the stop.
    WIDTH = 0.02
    TRIALS = 4000

    def make_stopping_runner(self, geometry, **kwargs):
        kwargs.setdefault("root_seed", 42)
        kwargs.setdefault("shard_size", SHARD)
        config = EngineConfig(sampling="importance", target_ci_width=self.WIDTH)
        return ParallelLifetimeRunner(
            geometry, RATES, make_1dp(geometry), config, **kwargs
        )

    def test_stop_fires_mid_campaign(self, geometry):
        runner = self.make_stopping_runner(geometry, workers=1)
        result = runner.run(trials=self.TRIALS)
        report = runner.last_report
        assert report.stopped_early
        assert not report.partial
        assert 0 < result.trials < self.TRIALS
        assert report.merged_shards < self.TRIALS // SHARD

    def test_resume_reaches_same_stopping_decision(
        self, geometry, tmp_path, monkeypatch
    ):
        uninterrupted_runner = self.make_stopping_runner(geometry, workers=1)
        uninterrupted = uninterrupted_runner.run(trials=self.TRIALS)
        assert uninterrupted_runner.last_report.stopped_early

        real_run_shard = parallel_mod._run_shard

        def interrupting(task):
            if task.spec.index == 2:
                raise KeyboardInterrupt
            return real_run_shard(task)

        cp = tmp_path / "cp.json"
        monkeypatch.setattr(parallel_mod, "_run_shard", interrupting)
        interrupted = self.make_stopping_runner(
            geometry, workers=1, checkpoint_path=cp
        )
        interrupted.run(trials=self.TRIALS)
        assert interrupted.last_report.interrupted
        assert not interrupted.last_report.stopped_early

        monkeypatch.setattr(parallel_mod, "_run_shard", real_run_shard)
        resumed_runner = self.make_stopping_runner(
            geometry, workers=1, checkpoint_path=cp, resume=True
        )
        resumed = resumed_runner.run(trials=self.TRIALS)
        report = resumed_runner.last_report
        assert report.stopped_early
        assert report.merged_shards == (
            uninterrupted_runner.last_report.merged_shards
        )
        assert json.dumps(resumed.to_dict(), sort_keys=True) == json.dumps(
            uninterrupted.to_dict(), sort_keys=True
        )

    def test_stopped_campaign_worker_count_independent(self, geometry):
        serial = self.make_stopping_runner(geometry, workers=1)
        pooled = self.make_stopping_runner(geometry, workers=4)
        a = serial.run(trials=self.TRIALS)
        b = pooled.run(trials=self.TRIALS)
        assert serial.last_report.stopped_early
        assert pooled.last_report.stopped_early
        assert serial.last_report.merged_shards == pooled.last_report.merged_shards
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )


class TestValidation:
    def test_bad_worker_count_rejected(self, geometry):
        with pytest.raises(ContractViolation):
            make_runner(geometry, workers=0)

    def test_bad_checkpoint_interval_rejected(self, geometry):
        with pytest.raises(ContractViolation):
            make_runner(geometry, workers=1, checkpoint_every=0)


class TestCancelHook:
    """Cooperative cancellation between shards (the campaign service's
    cancel path: the hook polls a job's cancel event)."""

    def test_hook_cancels_between_shards(self, geometry):
        calls = []

        def hook():
            # False before shard 0, True before shard 1: exactly one
            # shard runs, then the campaign drains gracefully.
            calls.append(True)
            return len(calls) > 1

        runner = make_runner(geometry, workers=1, cancel_hook=hook)
        partial = runner.run(trials=TRIALS)
        report = runner.last_report
        assert report.cancelled
        assert report.partial
        assert report.merged_shards == 1
        assert partial.trials == SHARD
        # The completed shard is byte-identical to the same shard of an
        # uncancelled run (cancellation never corrupts merged work).
        full = make_runner(geometry, workers=1).run(trials=TRIALS)
        assert partial.trials < full.trials

    def test_hook_true_from_start_runs_nothing(self, geometry):
        runner = make_runner(geometry, workers=1, cancel_hook=lambda: True)
        result = runner.run(trials=TRIALS)
        assert runner.last_report.cancelled
        assert runner.last_report.merged_shards == 0
        assert result.trials == 0

    def test_pool_honors_cancel_hook(self, geometry):
        calls = []

        def hook():
            calls.append(True)
            return len(calls) > 1

        runner = make_runner(geometry, workers=2, cancel_hook=hook)
        partial = runner.run(trials=TRIALS)
        report = runner.last_report
        assert report.cancelled
        assert partial.trials < TRIALS

    def test_no_hook_means_no_cancellation(self, geometry):
        runner = make_runner(geometry, workers=1)
        runner.run(trials=TRIALS)
        assert runner.last_report.cancelled is False
