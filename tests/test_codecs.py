"""Tests for the functional codecs: GF(256), Reed-Solomon, Hamming SECDED."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import hamming
from repro.ecc.gf256 import (
    gf_add,
    gf_div,
    gf_exp,
    gf_inv,
    gf_mul,
    gf_pow,
    poly_add,
    poly_deriv,
    poly_eval,
    poly_mul,
)
from repro.ecc.reed_solomon import ReedSolomon, chipkill_code
from repro.errors import ConfigurationError, UncorrectableError

bytes_ = st.integers(0, 255)
nonzero = st.integers(1, 255)


class TestGF256:
    @given(nonzero, nonzero)
    @settings(max_examples=200)
    def test_mul_div_inverse(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    @given(nonzero)
    @settings(max_examples=100)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(bytes_, bytes_, bytes_)
    @settings(max_examples=100)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(bytes_, bytes_)
    @settings(max_examples=100)
    def test_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    def test_zero_rules(self):
        assert gf_mul(0, 77) == 0
        with pytest.raises(ZeroDivisionError):
            gf_div(1, 0)
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_generator_order(self):
        seen = {gf_exp(i) for i in range(255)}
        assert len(seen) == 255  # generator spans the full group

    @given(nonzero, st.integers(0, 20))
    @settings(max_examples=50)
    def test_pow(self, a, n):
        product = 1
        for _ in range(n):
            product = gf_mul(product, a)
        assert gf_pow(a, n) == product

    def test_poly_eval_horner(self):
        # p(x) = 3 + 2x + x^2 at x=2 over GF(256): 3 ^ (2*2) ^ (2^2=4)
        p = [3, 2, 1]
        assert poly_eval(p, 2) == 3 ^ gf_mul(2, 2) ^ gf_mul(gf_mul(2, 2), 1)

    def test_poly_mul_degree(self):
        assert poly_mul([1, 1], [1, 1]) == [1, 0, 1]  # (x+1)^2 = x^2+1

    def test_poly_add_cancels(self):
        assert poly_add([5, 7], [5, 7]) == [0]

    def test_poly_deriv_char2(self):
        # d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
        assert poly_deriv([9, 8, 7, 6]) == [8, 0, 6]


class TestReedSolomon:
    @pytest.fixture
    def rs(self):
        return ReedSolomon(n=12, k=8)  # corrects 2 errors / 4 erasures

    def test_encode_is_systematic(self, rs):
        data = [1, 2, 3, 4, 5, 6, 7, 8]
        cw = rs.encode(data)
        assert cw[:8] == data
        assert len(cw) == 12

    def test_clean_decode(self, rs):
        data = [10, 20, 30, 40, 50, 60, 70, 80]
        assert rs.decode(rs.encode(data)) == data

    @given(st.lists(bytes_, min_size=8, max_size=8),
           st.integers(0, 11), bytes_)
    @settings(max_examples=100)
    def test_single_error_corrected(self, data, pos, noise):
        rs = ReedSolomon(12, 8)
        cw = rs.encode(data)
        corrupted = list(cw)
        corrupted[pos] ^= noise
        assert rs.decode(corrupted) == data

    @given(st.lists(bytes_, min_size=8, max_size=8),
           st.sets(st.integers(0, 11), min_size=2, max_size=2),
           st.lists(nonzero, min_size=2, max_size=2))
    @settings(max_examples=100)
    def test_two_errors_corrected(self, data, positions, noises):
        rs = ReedSolomon(12, 8)
        cw = rs.encode(data)
        corrupted = list(cw)
        for pos, noise in zip(sorted(positions), noises):
            corrupted[pos] ^= noise
        assert rs.decode(corrupted) == data

    def test_three_errors_rejected(self, rs):
        data = list(range(8))
        cw = rs.encode(data)
        corrupted = list(cw)
        for pos in (0, 4, 9):
            corrupted[pos] ^= 0x5A
        with pytest.raises(UncorrectableError):
            rs.decode(corrupted)

    @given(st.lists(bytes_, min_size=8, max_size=8),
           st.sets(st.integers(0, 11), min_size=4, max_size=4))
    @settings(max_examples=60)
    def test_four_erasures_corrected(self, data, positions):
        rs = ReedSolomon(12, 8)
        cw = rs.encode(data)
        corrupted = list(cw)
        for pos in positions:
            corrupted[pos] = (corrupted[pos] + 1) % 256
        assert rs.decode(corrupted, erasures=sorted(positions)) == data

    def test_erasure_plus_error(self, rs):
        data = [9] * 8
        cw = rs.encode(data)
        corrupted = list(cw)
        corrupted[2] ^= 0xFF  # erasure (location known)
        corrupted[7] ^= 0x11  # error (location unknown)
        assert rs.decode(corrupted, erasures=[2]) == data

    def test_too_many_erasures(self, rs):
        cw = rs.encode([0] * 8)
        with pytest.raises(UncorrectableError):
            rs.decode(cw, erasures=[0, 1, 2, 3, 4])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReedSolomon(8, 8)
        with pytest.raises(ConfigurationError):
            ReedSolomon(300, 8)
        rs = ReedSolomon(12, 8)
        with pytest.raises(ConfigurationError):
            rs.encode([0] * 7)
        with pytest.raises(ConfigurationError):
            rs.decode([0] * 11)
        with pytest.raises(ConfigurationError):
            rs.decode([0] * 12, erasures=[99])

    def test_chipkill_configuration(self):
        """§II-E: one symbol per bank, single check symbol rebuilds one
        known-failed unit (erasure)."""
        code = chipkill_code()
        assert (code.n, code.k) == (9, 8)
        data = [0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88]
        cw = code.encode(data)
        corrupted = list(cw)
        corrupted[3] = 0xFF  # one bank's symbol lost, location known
        assert code.decode(corrupted, erasures=[3]) == data


class TestHammingSECDED:
    @given(st.integers(0, (1 << 64) - 1))
    @settings(max_examples=100)
    def test_roundtrip(self, data):
        result = hamming.decode(hamming.encode(data))
        assert result.data == data
        assert not result.had_error

    @given(st.integers(0, (1 << 64) - 1), st.integers(0, 71))
    @settings(max_examples=150)
    def test_single_bit_corrected(self, data, bit):
        cw = hamming.encode(data) ^ (1 << bit)
        result = hamming.decode(cw)
        assert result.data == data
        assert result.had_error

    @given(
        st.integers(0, (1 << 64) - 1),
        st.sets(st.integers(0, 71), min_size=2, max_size=2),
    )
    @settings(max_examples=150)
    def test_double_bit_detected(self, data, bits):
        cw = hamming.encode(data)
        for bit in bits:
            cw ^= 1 << bit
        with pytest.raises(UncorrectableError):
            hamming.decode(cw)

    def test_overhead_matches_ecc_dimm(self):
        assert hamming.storage_overhead_fraction() == 0.125

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hamming.encode(1 << 64)
        with pytest.raises(ConfigurationError):
            hamming.decode(1 << 72)
