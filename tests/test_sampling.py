"""Acceptance tests for the stratified / importance sampling layer.

The samplers in :mod:`repro.reliability.sampling` claim *exactness*: the
reweighted estimator has the same expectation as the naive conditioned
path for any correction model.  These tests prove the pieces that can be
proven algebraically (stratum masses telescope, likelihood ratios are
recomputable from the sampled times alone and never exceed their
declared bound, allocation is a pure function of the shard size) and pin
the statistical claims against closed-form Poisson ground truth:

* ``E[LR] = 1`` under the importance proposal (fixed-seed Monte-Carlo);
* an instrumented model that fails iff two faults share an arrival
  epoch, whose failure probability has a closed form — both plans must
  bracket it, and so must the naive path on the same ground truth;
* hypothesis seed sweeps asserting stratified / importance / naive
  campaign estimates agree within their combined standard errors;
* byte-identity of sampled campaigns across worker counts.
"""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.base import CorrectionModel
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.rates import FailureRates
from repro.reliability import ParallelLifetimeRunner
from repro.reliability.montecarlo import EngineConfig, LifetimeSimulator
from repro.reliability.sampling import (
    DEFAULT_MIXTURE_WEIGHT,
    ImportanceSampler,
    StratifiedSampler,
    StratumDef,
    TrialSampler,
    clustered_likelihood_ratio,
    count_stratum_mass,
    full_epochs,
    make_sampler,
)
from repro.stack.geometry import LIFETIME_HOURS, SCRUB_INTERVAL_HOURS

RATES = FailureRates.paper_baseline(tsv_device_fit=0.0)


class FailOnEpochPair(CorrectionModel):
    """Fails iff two *live* faults arrived in the same scrub epoch.

    Within one epoch nothing is scrubbed, so both members of a same-epoch
    pair are live when the second arrives; faults surviving into later
    epochs keep their original arrival epoch and can never pair with a
    newcomer.  The failure probability is therefore exactly
    ``P(some epoch receives >= 2 Poisson arrivals)``, which has the
    closed form used in the tests below.
    """

    def __init__(self, geometry, epoch_hours: float = SCRUB_INTERVAL_HOURS):
        super().__init__(geometry)
        self.epoch_hours = epoch_hours

    @property
    def name(self) -> str:
        return "fail-on-epoch-pair"

    def is_uncorrectable(self, faults) -> bool:
        epochs = [int(f.time_hours // self.epoch_hours) for f in faults]
        return len(epochs) != len(set(epochs))

    def min_faults_to_fail(self) -> int:
        return 2


def epoch_pair_truth(
    rate_per_hour: float,
    lifetime_hours: float = LIFETIME_HOURS,
    epoch_hours: float = SCRUB_INTERVAL_HOURS,
) -> float:
    """P(any arrival epoch receives >= 2 Poisson arrivals), closed form.

    Arrival counts per epoch are independent Poissons; the lifetime
    splits into ``E`` full epochs of mass ``lam_e`` plus a remainder of
    mass ``lam_r``, and no epoch has two arrivals with probability
    ``[(1 + lam_e) e^-lam_e]^E * (1 + lam_r) e^-lam_r``.
    """
    epochs = int(lifetime_hours // epoch_hours)
    lam_e = rate_per_hour * epoch_hours
    lam_r = rate_per_hour * (lifetime_hours - epochs * epoch_hours)
    none = ((1.0 + lam_e) * math.exp(-lam_e)) ** epochs
    none *= (1.0 + lam_r) * math.exp(-lam_r)
    return 1.0 - none


def make_injector(geometry, seed: int = 0) -> FaultInjector:
    return FaultInjector(geometry, RATES, seed=seed)


# ---------------------------------------------------------------------- #
# Algebraic structure: masses, ratios, allocation
# ---------------------------------------------------------------------- #
class TestStratumAlgebra:
    def test_exact_masses_telescope_to_tail(self, geometry):
        """Sum of the plan's stratum masses == P(N >= m), bitwise-composed
        from the same prob_at_least the engine contract uses."""
        sampler = StratifiedSampler(
            make_injector(geometry), LIFETIME_HOURS, min_faults=2
        )
        total = math.fsum(s.weight for s in sampler.strata)
        tail = make_injector(geometry).prob_at_least(2, LIFETIME_HOURS)
        assert math.isclose(total, tail, rel_tol=1e-12)

    def test_count_stratum_mass_is_tail_difference(self, geometry):
        injector = make_injector(geometry)
        for count in (1, 2, 3, 7):
            mass = count_stratum_mass(injector, count, LIFETIME_HOURS)
            assert mass == injector.prob_at_least(
                count, LIFETIME_HOURS
            ) - injector.prob_at_least(count + 1, LIFETIME_HOURS)
            assert mass > 0.0

    def test_importance_stratum_matches_naive_weight(self, geometry):
        """The importance plan's single stratum carries exactly the naive
        path's conditioning mass (same prob_at_least call)."""
        injector = make_injector(geometry)
        sampler = ImportanceSampler(
            injector, LIFETIME_HOURS, min_faults=2,
            epoch_hours=SCRUB_INTERVAL_HOURS,
        )
        (stratum,) = sampler.strata
        assert stratum.weight == injector.prob_at_least(2, LIFETIME_HOURS)
        assert stratum.bound == 1.0 / (1.0 - DEFAULT_MIXTURE_WEIGHT)

    @given(trials=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_allocation_partitions_every_shard_size(self, trials):
        """sum == trials, no negatives, and >= 1 per stratum whenever the
        shard is large enough — for any shard size hypothesis finds."""
        from repro.stack.geometry import StackGeometry

        sampler = StratifiedSampler(
            make_injector(StackGeometry()), LIFETIME_HOURS, min_faults=2
        )
        counts = sampler.allocate(trials)
        assert sum(counts) == trials
        assert all(c >= 0 for c in counts)
        if trials >= len(counts):
            assert all(c >= 1 for c in counts)
        # Pure function of the shard size: equal shards allocate equally
        # on any worker, which is what keeps campaigns merge-stable.
        assert counts == sampler.allocate(trials)

    def test_likelihood_ratio_recomputable_and_bounded(self, geometry):
        """LR returned by the sampler equals the pure-function
        recomputation from the sampled times, and respects the bound."""
        sampler = ImportanceSampler(
            make_injector(geometry, seed=7), LIFETIME_HOURS, min_faults=2,
            epoch_hours=SCRUB_INTERVAL_HOURS,
        )
        (stratum,) = sampler.strata
        saw_clustered = False
        for _ in range(200):
            faults, ratio = sampler.sample(stratum)
            again = clustered_likelihood_ratio(
                [f.time_hours for f in faults],
                LIFETIME_HOURS,
                SCRUB_INTERVAL_HOURS,
                DEFAULT_MIXTURE_WEIGHT,
            )
            assert ratio == again
            assert 0.0 < ratio <= stratum.bound
            if ratio < 1e-2:
                saw_clustered = True
        assert saw_clustered, "proposal never clustered a pair in 200 draws"

    def test_degenerate_ratio_is_one(self):
        assert clustered_likelihood_ratio([1.0], 100.0, 12.0, 0.5) == 1.0
        assert clustered_likelihood_ratio([1.0, 2.0], 10.0, 12.0, 0.5) == 1.0
        assert clustered_likelihood_ratio([1.0, 2.0], 100.0, 12.0, 0.0) == 1.0

    def test_mean_likelihood_ratio_is_one(self, geometry):
        """E[LR] = 1 under the proposal (the normalization the
        unbiasedness proof rests on); fixed seed, 5-sigma tolerance."""
        sampler = ImportanceSampler(
            make_injector(geometry, seed=11), LIFETIME_HOURS, min_faults=2,
            epoch_hours=SCRUB_INTERVAL_HOURS,
        )
        (stratum,) = sampler.strata
        draws = 4000
        ratios = [sampler.sample(stratum)[1] for _ in range(draws)]
        mean = math.fsum(ratios) / draws
        second = math.fsum(r * r for r in ratios) / draws
        se = math.sqrt(max(second - mean * mean, 1e-12) / draws)
        assert abs(mean - 1.0) <= 5.0 * se, (mean, se)

    def test_make_sampler_rejects_unknown_method(self, geometry):
        try:
            make_sampler(
                "antithetic",
                make_injector(geometry),
                lifetime_hours=LIFETIME_HOURS,
                scrub_interval_hours=SCRUB_INTERVAL_HOURS,
                min_faults=2,
            )
        except ConfigurationError as exc:
            assert "antithetic" in str(exc)
        else:
            raise AssertionError("unknown method accepted")

    def test_naive_method_returns_none(self, geometry):
        assert make_sampler(
            "naive",
            make_injector(geometry),
            lifetime_hours=LIFETIME_HOURS,
            scrub_interval_hours=SCRUB_INTERVAL_HOURS,
            min_faults=2,
        ) is None


# ---------------------------------------------------------------------- #
# Statistical exactness against closed-form ground truth
# ---------------------------------------------------------------------- #
def run_sampled(geometry, method, seed, trials=2000, workers=1,
                scrub_hours=SCRUB_INTERVAL_HOURS):
    model = FailOnEpochPair(geometry, epoch_hours=scrub_hours)
    runner = ParallelLifetimeRunner(
        geometry,
        RATES,
        model,
        EngineConfig(sampling=method, scrub_interval_hours=scrub_hours),
        root_seed=seed,
        workers=workers,
        shard_size=500,
    )
    return runner.run(trials=trials)


class TestClosedFormValidation:
    def test_epoch_pair_truth_matches_analytic_tail(self, geometry):
        """Sanity on the instrumented model's closed form: it must be
        dominated by P(N >= 2) and dominate the single-epoch pair rate."""
        rate = make_injector(geometry).total_rate_per_hour
        truth = epoch_pair_truth(rate)
        assert 0.0 < truth < make_injector(geometry).prob_at_least(
            2, LIFETIME_HOURS
        )

    def test_importance_brackets_closed_form(self, geometry):
        rate = make_injector(geometry).total_rate_per_hour
        truth = epoch_pair_truth(rate)
        for seed in (1, 2, 3, 4, 5, 6):
            result = run_sampled(geometry, "importance", seed)
            lo, hi = result.confidence_interval(z=4.0)
            assert lo <= truth <= hi, (seed, lo, truth, hi)

    def test_stratified_brackets_closed_form(self, geometry):
        """Count stratification is exact but blind to *where* faults land,
        so validate it on a coarse epoch (the pair event is then common
        enough for the count strata to resolve at test scale)."""
        rate = make_injector(geometry).total_rate_per_hour
        scrub = 6000.0
        truth = epoch_pair_truth(rate, epoch_hours=scrub)
        for seed in (1, 2, 3):
            result = run_sampled(
                geometry, "stratified", seed, trials=4000, scrub_hours=scrub
            )
            lo, hi = result.confidence_interval(z=4.0)
            assert lo <= truth <= hi, (seed, lo, truth, hi)

    def test_importance_concentrates_effective_failures(self, geometry):
        """The clustered proposal must actually hit the rare event: far
        more effective failures per trial than the naive path sees."""
        result = run_sampled(geometry, "importance", seed=1)
        assert result.effective_failures() >= 20.0
        naive = run_sampled(geometry, "naive", seed=1)
        assert result.effective_failures() > 2.0 * max(
            1.0, float(naive.failures)
        )


class TestSamplersAgreeWithNaive:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_estimates_agree_within_combined_error(self, seed):
        """Property: for any root seed, the three plans estimate the same
        probability within 6 combined standard errors."""
        from repro.stack.geometry import StackGeometry

        geometry = StackGeometry()
        # Coarse epoch: the pair event is then frequent enough that all
        # three plans observe failures, making the per-plan standard
        # errors honest and the 6-sigma comparison meaningful.
        scrub = 6000.0
        estimates = {}
        for method in ("naive", "stratified", "importance"):
            result = run_sampled(
                geometry, method, seed, trials=1500, scrub_hours=scrub
            )
            estimates[method] = (
                result.failure_probability, result.std_error
            )
        p_naive, se_naive = estimates["naive"]
        for method in ("stratified", "importance"):
            p, se = estimates[method]
            combined = math.sqrt(se * se + se_naive * se_naive)
            assert abs(p - p_naive) <= 6.0 * combined, (
                seed, method, estimates
            )


# ---------------------------------------------------------------------- #
# Determinism across worker counts
# ---------------------------------------------------------------------- #
class TestWorkerByteIdentity:
    def test_stratified_workers_1_vs_4(self, geometry):
        a = run_sampled(geometry, "stratified", seed=9, workers=1)
        b = run_sampled(geometry, "stratified", seed=9, workers=4)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_importance_workers_1_vs_4(self, geometry):
        a = run_sampled(geometry, "importance", seed=9, workers=1)
        b = run_sampled(geometry, "importance", seed=9, workers=4)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_serial_engine_matches_runner_shard(self, geometry):
        """The sampled path composes through the shard machinery the same
        way the naive path does: a single-shard campaign equals a direct
        LifetimeSimulator run on the shard seed."""
        from repro.rng import derive_seed

        config = EngineConfig(sampling="importance")
        model = FailOnEpochPair(geometry)
        sim = LifetimeSimulator(
            geometry, RATES, model, config,
            seed=derive_seed(9, "shard", 0),
        )
        direct = sim.run(trials=400, label="direct")
        runner = ParallelLifetimeRunner(
            geometry, RATES, FailOnEpochPair(geometry), config,
            root_seed=9, workers=1, shard_size=400,
        )
        via_runner = runner.run(trials=400, label="direct")
        # The runner stamps a provenance manifest the bare engine cannot
        # know about; the physics payload must be identical.
        runner_doc = via_runner.to_dict()
        assert runner_doc.pop("manifest", None) is not None
        assert direct.canonical().to_dict() == runner_doc


# ---------------------------------------------------------------------- #
# Allocation edge cases
# ---------------------------------------------------------------------- #
class DegenerateSampler(TrialSampler):
    """A plan whose stratum masses all underflowed to zero — the
    even-spread fallback branch of ``allocate``."""

    def _build_strata(self):
        return [
            StratumDef(key=f"z={i}", weight=0.0, bound=1.0, min_count=1)
            for i in range(5)
        ]


class TestAllocateEdgeCases:
    def _sampler(self, geometry, count_strata=4):
        return StratifiedSampler(
            make_injector(geometry), LIFETIME_HOURS, min_faults=2,
            count_strata=count_strata,
        )

    @given(count_strata=st.integers(min_value=2, max_value=9))
    @settings(max_examples=20, deadline=None)
    def test_boundary_shard_sizes_partition_exactly(self, count_strata):
        """trials in {0, 1, S-1, S}: the partition invariant holds and the
        >=1-per-stratum rebalance kicks in exactly at trials == S."""
        from repro.stack.geometry import StackGeometry

        sampler = self._sampler(StackGeometry(), count_strata)
        strata = len(sampler.strata)
        for trials in (0, 1, strata - 1, strata):
            counts = sampler.allocate(trials)
            assert sum(counts) == trials, trials
            assert all(c >= 0 for c in counts)
            assert counts == sampler.allocate(trials)
        assert all(c == 1 for c in sampler.allocate(strata))

    @given(trials=st.integers(min_value=0, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_degenerate_weights_spread_evenly(self, trials):
        """All-underflowed masses must not divide by zero, must still
        partition, and the zero-rebalance loop must terminate."""
        from repro.stack.geometry import StackGeometry

        sampler = DegenerateSampler(
            make_injector(StackGeometry()), LIFETIME_HOURS, min_faults=1
        )
        counts = sampler.allocate(trials)
        assert sum(counts) == trials
        assert all(c >= 0 for c in counts)
        if trials >= len(counts):
            assert all(c >= 1 for c in counts)
        assert max(counts) - min(counts) <= 1  # even spread

    def test_zero_trials_zero_everywhere(self, geometry):
        sampler = self._sampler(geometry)
        assert sampler.allocate(0) == [0] * len(sampler.strata)

    def test_negative_trials_rejected(self, geometry):
        from repro.errors import ContractViolation

        sampler = self._sampler(geometry)
        try:
            sampler.allocate(-1)
        except ContractViolation:
            pass
        else:
            raise AssertionError("negative shard size accepted")
