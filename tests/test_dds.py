"""Tests for Dynamic Dual-granularity Sparing (§VII): bimodal demand,
RRT/BRT budgets, escalation, spare-area degradation."""

import pytest

from repro.core.dds import DDSController, SparingDecision, rows_required
from repro.errors import ConfigurationError
from repro.faults.types import (
    Permanence,
    make_addr_tsv_fault,
    make_bank_fault,
    make_bit_fault,
    make_column_fault,
    make_data_tsv_fault,
    make_row_fault,
    make_subarray_fault,
    make_word_fault,
)
from repro.stack.geometry import StackGeometry

P = Permanence.PERMANENT


@pytest.fixture
def geom():
    return StackGeometry()


@pytest.fixture
def dds(geom):
    return DDSController(geom)


class TestRowsRequired:
    """The sparing-demand function behind Figure 17."""

    def test_small_faults_need_one_row(self, geom):
        assert rows_required(geom, make_bit_fault(geom, 0, 0, 0, 0, P)) == 1
        assert rows_required(geom, make_word_fault(geom, 0, 0, 0, 0, P)) == 1
        assert rows_required(geom, make_row_fault(geom, 0, 0, 0, P)) == 1

    def test_subarray_needs_thousands(self, geom):
        f = make_subarray_fault(geom, 0, 0, 0, P)
        assert rows_required(geom, f) == geom.rows_per_subarray

    def test_column_needs_whole_bank(self, geom):
        f = make_column_fault(geom, 0, 0, 0, P)
        assert rows_required(geom, f) == geom.rows_per_bank

    def test_bank_needs_whole_bank(self, geom):
        f = make_bank_fault(geom, 0, 0, P)
        assert rows_required(geom, f) == geom.rows_per_bank


class TestRowSparing:
    def test_small_fault_row_spared(self, geom, dds):
        fault = make_row_fault(geom, 0, 0, 100, P)
        live, report = dds.process_scrub([fault])
        assert live == []
        assert report.row_spared == [fault]

    def test_four_rows_per_bank_limit(self, geom, dds):
        faults = [make_row_fault(geom, 0, 0, r, P) for r in range(4)]
        live, report = dds.process_scrub(faults)
        assert live == []
        assert len(report.row_spared) == 4
        # The fifth row fault escalates to bank sparing (§VII-C3).
        fifth = make_row_fault(geom, 0, 0, 4, P)
        live, report = dds.process_scrub([fifth])
        assert live == []
        assert report.bank_spared == [fifth]

    def test_other_banks_have_own_budget(self, geom, dds):
        for bank in range(8):
            faults = [make_row_fault(geom, 0, bank, r, P) for r in range(4)]
            live, report = dds.process_scrub(faults)
            assert live == [] and len(report.row_spared) == 4


class TestBankSparing:
    def test_large_fault_bank_spared(self, geom, dds):
        fault = make_subarray_fault(geom, 0, 0, 0, P)
        live, report = dds.process_scrub([fault])
        assert live == []
        assert report.bank_spared == [fault]
        assert dds.brt_slots_free == 1

    def test_two_spare_banks_only(self, geom, dds):
        a = make_bank_fault(geom, 0, 0, P)
        b = make_bank_fault(geom, 1, 1, P)
        c = make_bank_fault(geom, 2, 2, P)
        live, report = dds.process_scrub([a, b, c])
        assert report.bank_spared == [a, b]
        assert report.not_spared == [c]
        assert live == [c]

    def test_fault_in_spared_bank_absorbed(self, geom, dds):
        bank = make_bank_fault(geom, 0, 0, P)
        dds.process_scrub([bank])
        later = make_bit_fault(geom, 0, 0, 5, 5, P)
        live, report = dds.process_scrub([later])
        assert live == []
        assert report.bank_spared == [later]
        assert dds.brt_slots_free == 1  # no extra slot burned

    def test_tsv_fault_cannot_be_spared(self, geom, dds):
        fault = make_data_tsv_fault(geom, 0, 3)
        live, report = dds.process_scrub([fault])
        assert live == [fault]
        assert report.not_spared == [fault]


class TestSpareAreaFaults:
    def test_metadata_crc_bank_fault_no_effect(self, geom, dds):
        # Banks 0-4 of the metadata die hold CRC/TSV metadata.
        fault = make_bank_fault(geom, geom.metadata_die, 0, P)
        live, report = dds.process_scrub([fault])
        assert live == []
        assert not report.not_spared

    def test_coarse_spare_bank_fault_kills_slot(self, geom, dds):
        spare_bank = dds.coarse_spare_banks[0]
        fault = make_bank_fault(geom, geom.metadata_die, spare_bank, P)
        dds.process_scrub([fault])
        assert dds.brt_slots_free == 1

    def test_coarse_spare_fault_re_exposes_owner(self, geom, dds):
        victim = make_bank_fault(geom, 0, 0, P)
        dds.process_scrub([victim])
        spare_bank = dds.coarse_spare_banks[0]
        killer = make_bank_fault(geom, geom.metadata_die, spare_bank, P)
        live, report = dds.process_scrub([killer])
        assert victim in report.re_exposed
        assert victim in live

    def test_fine_spare_fault_disables_row_sparing(self, geom, dds):
        spared = make_row_fault(geom, 0, 0, 1, P)
        dds.process_scrub([spared])
        killer = make_bank_fault(geom, geom.metadata_die, dds.fine_spare_bank, P)
        live, report = dds.process_scrub([killer])
        assert spared in report.re_exposed
        # New small faults now escalate to bank sparing.
        new = make_row_fault(geom, 1, 1, 1, P)
        live, report = dds.process_scrub([new])
        assert report.bank_spared and new in report.bank_spared


class TestConfiguration:
    def test_rejects_negative_budgets(self, geom):
        with pytest.raises(ConfigurationError):
            DDSController(geom, spare_rows_per_bank=-1)
        with pytest.raises(ConfigurationError):
            DDSController(geom, spare_banks=-1)

    def test_rrt_overhead_about_1kb(self, geom, dds):
        """§VII-C2: 33 bits x 4 entries x 64 banks ~ 1 KB."""
        assert 1000 <= dds.rrt_overhead_bytes <= 1100

    def test_spare_area_layout(self, geom, dds):
        """§VII-C1: metadata banks 5,6 coarse + bank 7 fine."""
        assert dds.coarse_spare_banks == [5, 6]
        assert dds.fine_spare_bank == 7

    def test_zero_spare_banks(self, geom):
        dds = DDSController(geom, spare_banks=0)
        fault = make_bank_fault(geom, 0, 0, P)
        live, report = dds.process_scrub([fault])
        assert live == [fault]
