"""Tests for the OpenMetrics text exposition and its strict parser.

The encoder must be a deterministic pure function of the registry (two
renders byte-identical, sorted family order, one canonical spelling per
number), and the parser must reject every malformation CI cares about —
it is the in-tree replacement for an external OpenMetrics client.
"""

import math

import pytest

from repro.errors import TelemetryError
from repro.telemetry.exposition import (
    OPENMETRICS_CONTENT_TYPE,
    format_value,
    mangle_name,
    parse_openmetrics,
    render_openmetrics,
)
from repro.telemetry.registry import MetricsRegistry


def sample_registry():
    registry = MetricsRegistry()
    registry.inc("service/jobs_completed", 3)
    registry.inc("engine/trials", 500)
    registry.gauge_set("service/queue_depth", 2.0)
    registry.gauge_set("campaign/ci_width", 0.0125)
    for value in (0.002, 0.004, 0.4):
        registry.observe(
            "http/latency_seconds/healthz", value, edges=(0.001, 0.01, 0.1)
        )
    registry.record_seconds("merge", 1.5)
    return registry


class TestMangleAndFormat:
    def test_mangle_prefixes_and_replaces(self):
        assert mangle_name("service/jobs_completed") == (
            "repro_service_jobs_completed"
        )
        assert mangle_name("http/latency_seconds/job") == (
            "repro_http_latency_seconds_job"
        )

    def test_format_value_integers_and_integral_floats(self):
        assert format_value(3) == "3"
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"

    def test_format_value_specials(self):
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"

    def test_format_value_rejects_bool(self):
        with pytest.raises(TelemetryError, match="boolean"):
            format_value(True)


class TestRender:
    def test_render_is_deterministic(self):
        registry = sample_registry()
        assert render_openmetrics(registry) == render_openmetrics(registry)

    def test_render_stable_across_serialization_round_trip(self):
        registry = sample_registry()
        rebuilt = MetricsRegistry.from_dict(registry.to_dict())
        assert render_openmetrics(rebuilt) == render_openmetrics(registry)

    def test_families_sorted_and_typed(self):
        text = render_openmetrics(sample_registry())
        type_lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
        names = [l.split(" ")[2] for l in type_lines]
        assert names == sorted(names)
        assert "# TYPE repro_service_jobs_completed counter" in text
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "# TYPE repro_http_latency_seconds_healthz histogram" in text
        assert "# TYPE repro_merge summary" in text

    def test_counter_sample_carries_total_suffix(self):
        text = render_openmetrics(sample_registry())
        assert "repro_service_jobs_completed_total 3" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = render_openmetrics(sample_registry())
        assert 'repro_http_latency_seconds_healthz_bucket{le="0.01"} 2' in text
        assert 'repro_http_latency_seconds_healthz_bucket{le="+Inf"} 3' in text
        assert "repro_http_latency_seconds_healthz_count 3" in text

    def test_ends_with_eof(self):
        assert render_openmetrics(sample_registry()).endswith("# EOF\n")

    def test_empty_registry_renders_bare_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"

    def test_name_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.inc("a/b", 1)
        registry.inc("a_b", 1)
        with pytest.raises(TelemetryError, match="collision"):
            render_openmetrics(registry)

    def test_content_type_constant(self):
        assert "openmetrics-text" in OPENMETRICS_CONTENT_TYPE
        assert "version=1.0.0" in OPENMETRICS_CONTENT_TYPE


class TestParseRoundTrip:
    def test_parse_accepts_own_render(self):
        families = parse_openmetrics(render_openmetrics(sample_registry()))
        assert families["repro_service_jobs_completed"]["type"] == "counter"
        assert families["repro_merge"]["type"] == "summary"
        hist = families["repro_http_latency_seconds_healthz"]
        assert hist["type"] == "histogram"
        buckets = [s for s in hist["samples"] if s[0].endswith("_bucket")]
        assert buckets[-1][1]["le"] == "+Inf"

    def test_round_trip_values(self):
        families = parse_openmetrics(render_openmetrics(sample_registry()))
        (name, labels, value), = families["repro_engine_trials"]["samples"]
        assert name == "repro_engine_trials_total"
        assert labels == {}
        assert value == 500


class TestParserStrictness:
    def test_missing_eof(self):
        with pytest.raises(TelemetryError, match="# EOF"):
            parse_openmetrics("# TYPE repro_x counter\nrepro_x_total 1\n")

    def test_early_eof(self):
        with pytest.raises(TelemetryError, match="before end"):
            parse_openmetrics("# EOF\nrepro_x_total 1\n# EOF\n")

    def test_sample_before_type(self):
        with pytest.raises(TelemetryError, match="no declared family"):
            parse_openmetrics("repro_x_total 1\n# EOF\n")

    def test_wrong_suffix_for_type(self):
        text = "# TYPE repro_x gauge\nrepro_x_total 1\n# EOF\n"
        with pytest.raises(TelemetryError, match="no declared family"):
            parse_openmetrics(text)

    def test_duplicate_type_line(self):
        text = "# TYPE repro_x counter\n# TYPE repro_x counter\n# EOF\n"
        with pytest.raises(TelemetryError, match="duplicate TYPE"):
            parse_openmetrics(text)

    def test_unknown_type(self):
        with pytest.raises(TelemetryError, match="unsupported metric type"):
            parse_openmetrics("# TYPE repro_x untyped\n# EOF\n")

    def test_invalid_value(self):
        text = "# TYPE repro_x counter\nrepro_x_total banana\n# EOF\n"
        with pytest.raises(TelemetryError, match="invalid sample value"):
            parse_openmetrics(text)

    def test_malformed_label(self):
        text = (
            "# TYPE repro_x histogram\n"
            "repro_x_bucket{le=0.1} 1\n"
            "# EOF\n"
        )
        with pytest.raises(TelemetryError, match="malformed label"):
            parse_openmetrics(text)

    def test_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_x histogram\n"
            'repro_x_bucket{le="0.1"} 5\n'
            'repro_x_bucket{le="+Inf"} 3\n'
            "repro_x_count 3\n"
            "repro_x_sum 1\n"
            "# EOF\n"
        )
        with pytest.raises(TelemetryError, match="not cumulative"):
            parse_openmetrics(text)

    def test_histogram_without_inf_bucket(self):
        text = (
            "# TYPE repro_x histogram\n"
            'repro_x_bucket{le="0.1"} 1\n'
            "repro_x_count 1\n"
            "repro_x_sum 0.05\n"
            "# EOF\n"
        )
        with pytest.raises(TelemetryError, match=r"\+Inf bucket"):
            parse_openmetrics(text)

    def test_inf_bucket_disagrees_with_count(self):
        text = (
            "# TYPE repro_x histogram\n"
            'repro_x_bucket{le="+Inf"} 2\n'
            "repro_x_count 3\n"
            "repro_x_sum 1\n"
            "# EOF\n"
        )
        with pytest.raises(TelemetryError, match="!= *_count|!= \n?"):
            parse_openmetrics(text)

    def test_unknown_comment_directive(self):
        with pytest.raises(TelemetryError, match="unknown comment"):
            parse_openmetrics("# BOGUS thing\n# EOF\n")
