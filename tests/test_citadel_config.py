"""Tests for the composed Citadel architecture object and the per-line
metadata layout."""

import pytest

from repro.core.citadel import CitadelConfig
from repro.core.metadata import (
    CRC_BITS,
    METADATA_BITS,
    SPARE_BITS,
    SWAP_BITS,
    LineMetadata,
)
from repro.core.parity3dp import ParityND
from repro.errors import ConfigurationError
from repro.stack.geometry import StackGeometry
from repro.stack.striping import StripingPolicy


class TestCitadelConfig:
    def test_defaults_match_paper(self):
        config = CitadelConfig()
        assert config.standby_tsvs == 4
        assert config.parity_dimensions == frozenset({1, 2, 3})
        assert config.spare_rows_per_bank == 4
        assert config.spare_banks == 2
        assert config.scrub_interval_hours == 12.0
        assert config.striping is StripingPolicy.SAME_BANK

    def test_correction_model_is_3dp(self):
        model = CitadelConfig().correction_model()
        assert isinstance(model, ParityND)
        assert model.dimensions == frozenset({1, 2, 3})

    def test_controllers_constructed_from_config(self):
        config = CitadelConfig(spare_rows_per_bank=2, spare_banks=1)
        dds = config.dds_controller()
        assert dds.spare_rows_per_bank == 2
        assert dds.spare_banks == 1
        swap = config.tsv_swap_controller()
        assert swap.standby_count == 4

    def test_storage_overhead_headline(self):
        """§VII-E: ~14% DRAM (vs 12.5% ECC DIMM), ~35 KB SRAM."""
        overhead = CitadelConfig().storage_overhead()
        assert overhead.metadata_die_fraction == pytest.approx(0.125)
        assert overhead.parity_bank_fraction == pytest.approx(1 / 64)
        assert overhead.dram_fraction == pytest.approx(0.1406, abs=1e-3)
        assert overhead.sram_parity_bytes == 34 * 1024
        assert 34 * 1024 < overhead.sram_bytes <= 36 * 1024

    def test_overhead_scales_with_geometry(self):
        small = CitadelConfig(geometry=StackGeometry.small())
        overhead = small.storage_overhead()
        assert overhead.metadata_die_fraction == pytest.approx(0.25)
        assert overhead.parity_bank_fraction == pytest.approx(1 / 16)

    def test_ablation_config(self):
        config = CitadelConfig(parity_dimensions=frozenset({1}))
        assert config.correction_model().name == "1DP"


class TestLineMetadata:
    def test_layout_is_64_bits(self):
        assert METADATA_BITS == 64
        assert CRC_BITS == 32 and SWAP_BITS == 8 and SPARE_BITS == 24

    def test_pack_unpack_roundtrip(self):
        meta = LineMetadata(crc32=0xDEADBEEF, swap_data=0xA5, spare_info=0x123456)
        assert LineMetadata.unpack(meta.pack()) == meta

    def test_pack_is_within_64_bits(self):
        meta = LineMetadata(
            crc32=0xFFFFFFFF, swap_data=0xFF, spare_info=0xFFFFFF
        )
        assert meta.pack() < (1 << 64)

    def test_fetched_bits_is_40(self):
        """Figure 6: each transaction fetches 40 bits of metadata."""
        meta = LineMetadata(crc32=0, swap_data=0)
        assert meta.fetched_bits() == 40

    def test_field_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            LineMetadata(crc32=1 << 32, swap_data=0)
        with pytest.raises(ConfigurationError):
            LineMetadata(crc32=0, swap_data=1 << 8)
        with pytest.raises(ConfigurationError):
            LineMetadata(crc32=0, swap_data=0, spare_info=1 << 24)
        with pytest.raises(ConfigurationError):
            LineMetadata.unpack(1 << 64)

    def test_zero_roundtrip(self):
        assert LineMetadata.unpack(0) == LineMetadata(crc32=0, swap_data=0)
