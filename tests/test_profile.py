"""Tests for the profiling layer: deterministic span collapse, Chrome
trace export, and the wall-clock sampling profiler.

The split personality matters: :func:`collapse_spans` and
:func:`trace_to_chrome` are pure functions of the trace (asserted
byte-for-byte), while :class:`SamplingProfiler` is volatile by
construction — its tests assert mechanics (start/stop, folded-stack
shape) and, critically, that running it never changes campaign results.
"""

import json
import threading
import time

import pytest

from repro.errors import TelemetryError
from repro.faults.rates import FailureRates
from repro.reliability.montecarlo import EngineConfig
from repro.reliability.parallel import ParallelLifetimeRunner
from repro.schemes import SCHEMES
from repro.stack.geometry import StackGeometry
from repro.telemetry.profile import (
    SamplingProfiler,
    collapse_spans,
    normalize_scope,
    profile_callable,
    trace_to_chrome,
    write_collapsed,
)
from repro.telemetry.tracing import TraceRecord, TraceWriter, read_trace


def record(kind, name, path, t=0.0, **attrs):
    return TraceRecord(kind=kind, name=name, path=path, t=t, attrs=attrs)


class TestNormalizeScope:
    def test_strips_trailing_index(self):
        assert normalize_scope("shard-3") == "shard"
        assert normalize_scope("trial-17") == "trial"

    def test_keeps_plain_names(self):
        assert normalize_scope("campaign") == "campaign"
        assert normalize_scope("shard-x") == "shard-x"


class TestCollapseSpans:
    RECORDS = [
        record("meta", "trace", "", 0.0),
        record("begin", "campaign", "campaign", 0.0),
        record("begin", "shard-0", "campaign/shard-0", 0.1),
        record("end", "shard-0", "campaign/shard-0", 0.2),
        record("begin", "shard-1", "campaign/shard-1", 0.2),
        record("end", "shard-1", "campaign/shard-1", 0.3),
        record("event", "merge", "campaign/merge", 0.3),
        record("end", "campaign", "campaign", 0.4),
    ]

    def test_weights_one_per_end_record(self):
        assert collapse_spans(self.RECORDS) == [
            "campaign 1",
            "campaign;shard 2",
        ]

    def test_normalization_can_be_disabled(self):
        lines = collapse_spans(self.RECORDS, normalize=False)
        assert "campaign;shard-0 1" in lines
        assert "campaign;shard-1 1" in lines

    def test_deterministic(self):
        assert collapse_spans(self.RECORDS) == collapse_spans(self.RECORDS)

    def test_write_collapsed_round_trips(self, tmp_path):
        out = tmp_path / "spans.folded"
        write_collapsed(collapse_spans(self.RECORDS), out)
        assert out.read_text() == "campaign 1\ncampaign;shard 2\n"

    def test_real_trace_collapse_is_trial_weighted(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        writer = TraceWriter(trace_path, sample_every=1)
        with writer.span("campaign"):
            for shard in range(2):
                with writer.span(f"shard-{shard}"):
                    for _ in range(3):
                        with writer.span("trial"):
                            pass
        writer.close()
        lines = collapse_spans(read_trace(trace_path))
        assert "campaign;shard;trial 6" in lines
        assert "campaign;shard 2" in lines


class TestTraceToChrome:
    def test_document_shape(self):
        document = trace_to_chrome(TestCollapseSpans.RECORDS)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata
        phases = [e["ph"] for e in events[1:]]
        assert phases == ["B", "B", "E", "B", "E", "i", "E"]

    def test_timestamps_in_microseconds(self):
        document = trace_to_chrome([record("event", "x", "x", t=0.25)])
        (meta, instant) = document["traceEvents"]
        assert instant["ts"] == 0.25 * 1e6
        assert instant["s"] == "t"

    def test_meta_records_are_skipped(self):
        document = trace_to_chrome([record("meta", "trace", "")])
        assert len(document["traceEvents"]) == 1  # only process_name

    def test_attrs_become_args(self):
        document = trace_to_chrome(
            [record("event", "x", "x", t=0.0, shard=3)]
        )
        assert document["traceEvents"][1]["args"] == {"shard": 3}

    def test_document_is_json_serializable_and_deterministic(self):
        a = json.dumps(trace_to_chrome(TestCollapseSpans.RECORDS),
                       sort_keys=True)
        b = json.dumps(trace_to_chrome(TestCollapseSpans.RECORDS),
                       sort_keys=True)
        assert a == b


class TestSamplingProfiler:
    def busy_wait(self, seconds):
        deadline = time.monotonic() + seconds
        total = 0
        while time.monotonic() < deadline:
            total += sum(range(200))
        return total

    def test_samples_the_calling_thread(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            self.busy_wait(0.08)
        assert profiler.sample_count > 0
        lines = profiler.collapsed()
        assert lines
        stack, count = lines[0].rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack  # module:func chain, outermost first

    def test_folded_stacks_name_this_test(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            self.busy_wait(0.08)
        assert any("busy_wait" in line for line in profiler.collapsed())

    def test_double_start_raises(self):
        profiler = SamplingProfiler(interval_s=0.01)
        profiler.start()
        try:
            with pytest.raises(TelemetryError, match="already started"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(interval_s=0.01)
        profiler.start()
        profiler.stop()
        profiler.stop()  # no-op

    def test_can_target_another_thread(self):
        stop = threading.Event()

        def spin():
            while not stop.is_set():
                sum(range(100))

        worker = threading.Thread(target=spin, daemon=True)
        worker.start()
        profiler = SamplingProfiler(
            interval_s=0.001, thread_id=worker.ident
        )
        profiler.start()
        time.sleep(0.05)
        profiler.stop()
        stop.set()
        worker.join(timeout=5.0)
        assert any("spin" in line for line in profiler.collapsed())

    def test_rejects_non_positive_interval(self):
        with pytest.raises(Exception):
            SamplingProfiler(interval_s=0.0)

    def test_profile_callable_wraps_result(self):
        report = profile_callable(lambda: 42, interval_s=0.001)
        assert report["result"] == 42
        assert report["samples"] >= 0
        assert report["wall_seconds"] >= 0.0


class TestProfilerNeverChangesResults:
    """The observability invariant, profiler edition: a campaign run
    while being sampled is byte-identical to one that never imported
    the profiler machinery."""

    def run_campaign(self):
        geometry = StackGeometry()
        runner = ParallelLifetimeRunner(
            geometry,
            FailureRates.paper_baseline(tsv_device_fit=0.0),
            SCHEMES["secded"](geometry),
            EngineConfig(collect_metrics=True),
            root_seed=11,
            workers=1,
            shard_size=50,
        )
        return runner.run(trials=100)

    def test_sampled_campaign_is_byte_identical(self):
        baseline = self.run_campaign().to_dict()
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            sampled = self.run_campaign().to_dict()
        assert json.dumps(sampled, sort_keys=True) == json.dumps(
            baseline, sort_keys=True
        )
