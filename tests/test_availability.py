"""Tests for the correction-frequency / availability arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.rates import FailureRates
from repro.reliability.availability import CORRECTION_SECONDS, AvailabilityModel
from repro.stack.geometry import StackGeometry


@pytest.fixture
def model():
    return AvailabilityModel(StackGeometry(), FailureRates.paper_baseline())


class TestCorrectionFrequency:
    def test_correction_is_rare(self, model):
        """§VI footnote 3 claims correction fires at most "once every few
        months"; with Table I rates a single stack sees one event per ~31
        years, comfortably inside that bound (the paper's phrasing is an
        upper bound on frequency, presumably fleet-scale)."""
        mtbc_years = model.mean_time_between_corrections_years()
        assert mtbc_years > 0.25

    def test_corrections_match_fault_rate(self, model):
        # 409.11 FIT/die * 9 dies over 7 years ~ 0.226 events.
        assert model.corrections_per_lifetime_with_dds() == pytest.approx(
            0.2257, abs=0.01
        )

    def test_downtime_negligible_with_dds(self, model):
        """0.7 s a few times per decade: availability ~ 1."""
        assert model.correction_downtime_fraction_with_dds() < 1e-8


class TestUnsparedSlowdown:
    def test_no_faults_no_slowdown(self, model):
        assert model.unspared_slowdown(1e6, faulty_fraction=0.0) == 1.0

    def test_single_subarray_is_catastrophic(self, model):
        """One unspared subarray (1/512 of capacity) at 1M accesses/s."""
        fraction = 1.0 / 512
        slowdown = model.unspared_slowdown(1e6, faulty_fraction=fraction)
        assert slowdown > 1000

    def test_expected_faulty_fraction_small_but_fatal(self, model):
        fraction = model.faulty_fraction_without_sparing()
        assert 0 < fraction < 1e-3  # a sliver of capacity...
        # ...yet enough to wreck throughput without DDS.
        assert model.unspared_slowdown(1e6) > 10

    def test_slowdown_scales_with_access_rate(self, model):
        low = model.unspared_slowdown(1e3, faulty_fraction=1e-4)
        high = model.unspared_slowdown(1e6, faulty_fraction=1e-4)
        assert high > low > 1.0

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.unspared_slowdown(-1.0)
        with pytest.raises(ConfigurationError):
            model.unspared_slowdown(1.0, faulty_fraction=2.0)
        with pytest.raises(ConfigurationError):
            AvailabilityModel(
                StackGeometry(), FailureRates.paper_baseline(),
                correction_seconds=0,
            )

    def test_paper_constant(self):
        assert CORRECTION_SECONDS == 0.7
