"""Functional tests of the striped ChipKill-like baseline datapath, and
its agreement with the symbolic SymbolCode(ACROSS_CHANNELS) model."""

import random

import pytest

from repro.core.striped_datapath import StripedDatapath
from repro.ecc.symbol_code import SymbolCode
from repro.errors import ConfigurationError, GeometryError, UncorrectableError
from repro.faults.types import (
    Permanence,
    make_addr_tsv_fault,
    make_bank_fault,
    make_bit_fault,
    make_column_fault,
    make_data_tsv_fault,
    make_row_fault,
)
from repro.stack.geometry import StackGeometry
from repro.stack.striping import StripingPolicy

P = Permanence.PERMANENT


@pytest.fixture
def dp():
    return StripedDatapath(rng=random.Random(3))


def payload(address, nbytes=64):
    rng = random.Random(address * 0x9E3779B9 % (1 << 32))
    return bytes(rng.randrange(256) for _ in range(nbytes))


def fill(dp, n=128):
    for a in range(n):
        dp.write(a, payload(a))


class TestCleanPath:
    def test_roundtrip(self, dp):
        fill(dp, 64)
        for a in range(64):
            assert dp.read(a) == payload(a)
        assert dp.stats.chunk_crc_mismatches == 0

    def test_data_is_striped_across_dies(self, dp):
        dp.write(0, bytes(range(64)))
        bank, row, slot = dp._locate(0)
        sl = dp._chunk_slice(slot)
        for die in range(dp.geometry.data_dies):
            chunk = bytes(dp.array.cells[die, bank, row, sl])
            start = die * dp.chunk_bytes
            assert chunk == bytes(range(64))[start: start + dp.chunk_bytes]

    def test_check_chunk_written(self, dp):
        # RS(5,4)'s single check symbol is the GF-sum of the four data
        # symbols, so structured data can cancel it; random data won't.
        dp.write(0, payload(12345))
        bank, row, slot = dp._locate(0)
        sl = dp._chunk_slice(slot)
        meta = dp.geometry.metadata_die
        assert dp.array.cells[meta, bank, row, sl].any()

    def test_validation(self, dp):
        with pytest.raises(ConfigurationError):
            dp.write(0, b"short")
        with pytest.raises(GeometryError):
            dp.read(dp.num_lines)


class TestSingleUnitLoss:
    """Everything confined to one die is one erasure: correctable."""

    @pytest.mark.parametrize("make,args", [
        (make_bit_fault, (1, 0, 0, 5)),
        (make_row_fault, (2, 0, 0)),
        (make_column_fault, (0, 0, 3)),
        (make_bank_fault, (3, 0)),
    ])
    def test_single_die_fault_corrected(self, dp, make, args):
        fill(dp, 32)
        # Place the fault on the structures address 0 uses: bank 0, row 0.
        dp.inject(make(dp.geometry, *args, P))
        for a in range(0, 32, 4):
            assert dp.read(a) == payload(a)

    def test_tsv_fault_is_one_unit(self, dp):
        """The whole channel dies; across-channels striping absorbs it
        with no TSV-Swap at all (Figure 4's high-TSV story)."""
        fill(dp, 32)
        dp.inject(make_data_tsv_fault(dp.geometry, channel=1, tsv_index=2))
        dp.inject(make_addr_tsv_fault(dp.geometry, channel=1, tsv_index=1))
        for a in range(32):
            assert dp.read(a) == payload(a)
        assert dp.stats.erasure_corrections > 0

    def test_metadata_die_loss_harmless(self, dp):
        fill(dp, 16)
        dp.inject(make_bank_fault(dp.geometry, dp.geometry.metadata_die, 0, P))
        for a in range(16):
            assert dp.read(a) == payload(a)


class TestTwoUnitLoss:
    def test_two_dies_same_stripe_uncorrectable(self, dp):
        fill(dp, 16)
        dp.inject(make_bank_fault(dp.geometry, 0, 0, P))
        dp.inject(make_bank_fault(dp.geometry, 1, 0, P))
        with pytest.raises(UncorrectableError):
            dp.read(0)

    def test_two_dies_different_banks_fine(self, dp):
        fill(dp, 64)
        dp.inject(make_bank_fault(dp.geometry, 0, 0, P))
        dp.inject(make_bank_fault(dp.geometry, 1, 1, P))
        for a in range(64):
            assert dp.read(a) == payload(a)

    def test_agrees_with_symbolic_model(self, dp):
        """The functional outcome must match SymbolCode(ACROSS_CHANNELS)
        on representative fault sets."""
        model = SymbolCode(dp.geometry, StripingPolicy.ACROSS_CHANNELS)
        cases = [
            [make_bank_fault(dp.geometry, 0, 0, P)],
            [make_bank_fault(dp.geometry, 0, 0, P),
             make_bank_fault(dp.geometry, 2, 0, P)],
            [make_data_tsv_fault(dp.geometry, 1, 0)],
            [make_row_fault(dp.geometry, 0, 0, 0, P),
             make_row_fault(dp.geometry, 1, 0, 0, P)],
        ]
        for faults in cases:
            functional = StripedDatapath(rng=random.Random(4))
            fill(functional, 32)
            for fault in faults:
                functional.inject(fault)
            lost = 0
            for a in range(32):
                try:
                    assert functional.read(a) == payload(a)
                except UncorrectableError:
                    lost += 1
            if model.is_uncorrectable(faults):
                assert lost > 0, faults
            else:
                assert lost == 0, faults
