"""Tests for address mapping and the three striping policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.stack.address import AddressMapper, LineLocation
from repro.stack.geometry import StackGeometry
from repro.stack.striping import (
    StripingPolicy,
    banks_touched,
    channels_touched,
    sub_accesses,
)


@pytest.fixture
def geom():
    return StackGeometry()


class TestAddressMapper:
    def test_roundtrip_exhaustive_small(self):
        geom = StackGeometry.small()
        mapper = AddressMapper(geom)
        for addr in range(0, mapper.num_lines, 97):
            loc = mapper.to_location(addr)
            assert mapper.to_address(loc) == addr

    @given(st.integers(min_value=0))
    @settings(max_examples=200)
    def test_roundtrip_property(self, raw):
        geom = StackGeometry()
        mapper = AddressMapper(geom, stacks=2)
        addr = raw % mapper.num_lines
        assert mapper.to_address(mapper.to_location(addr)) == addr

    def test_capacity(self, geom):
        mapper = AddressMapper(geom)
        assert mapper.num_lines * geom.line_bytes == geom.data_bytes

    def test_two_stacks_doubles_lines(self, geom):
        assert AddressMapper(geom, stacks=2).num_lines == (
            2 * AddressMapper(geom).num_lines
        )

    def test_channel_interleaving(self, geom):
        """Consecutive lines round-robin the channels (then banks) so that
        streams exploit all the parallelism and share parity groups."""
        mapper = AddressMapper(geom)
        locs = [mapper.to_location(a) for a in range(64)]
        assert [loc.channel for loc in locs[:8]] == list(range(8))
        assert len({(loc.row, loc.slot) for loc in locs}) == 1
        assert len({(loc.channel, loc.bank) for loc in locs}) == 64

    def test_out_of_range_rejected(self, geom):
        mapper = AddressMapper(geom)
        with pytest.raises(GeometryError):
            mapper.to_location(mapper.num_lines)
        with pytest.raises(GeometryError):
            mapper.to_location(-1)
        with pytest.raises(GeometryError):
            mapper.to_address(LineLocation(channel=8, bank=0, row=0, slot=0))

    def test_rejects_zero_stacks(self, geom):
        with pytest.raises(GeometryError):
            AddressMapper(geom, stacks=0)


class TestStriping:
    HOME = LineLocation(channel=3, bank=5, row=77, slot=9)

    def test_same_bank_single_access(self, geom):
        subs = sub_accesses(StripingPolicy.SAME_BANK, geom, self.HOME)
        assert len(subs) == 1
        assert subs[0].channel == 3 and subs[0].bank == 5
        assert subs[0].bytes == 64

    def test_across_banks_covers_all_banks_one_channel(self, geom):
        subs = sub_accesses(StripingPolicy.ACROSS_BANKS, geom, self.HOME)
        assert len(subs) == 8
        assert {s.bank for s in subs} == set(range(8))
        assert {s.channel for s in subs} == {3}
        assert all(s.bytes == 8 for s in subs)
        assert sum(s.bytes for s in subs) == 64

    def test_across_channels_covers_all_channels_one_bank(self, geom):
        subs = sub_accesses(StripingPolicy.ACROSS_CHANNELS, geom, self.HOME)
        assert len(subs) == 8
        assert {s.channel for s in subs} == set(range(8))
        assert {s.bank for s in subs} == {5}
        assert sum(s.bytes for s in subs) == 64

    def test_across_channels_stays_in_home_stack(self, geom):
        home = LineLocation(channel=11, bank=2, row=0, slot=0)  # stack 1
        subs = sub_accesses(StripingPolicy.ACROSS_CHANNELS, geom, home)
        assert {s.channel for s in subs} == set(range(8, 16))

    def test_row_slot_preserved(self, geom):
        for policy in StripingPolicy:
            for sub in sub_accesses(policy, geom, self.HOME):
                assert sub.row == 77 and sub.slot == 9

    def test_banks_channels_touched(self, geom):
        assert banks_touched(StripingPolicy.SAME_BANK, geom) == 1
        assert banks_touched(StripingPolicy.ACROSS_BANKS, geom) == 8
        assert banks_touched(StripingPolicy.ACROSS_CHANNELS, geom) == 8
        assert channels_touched(StripingPolicy.SAME_BANK, geom) == 1
        assert channels_touched(StripingPolicy.ACROSS_BANKS, geom) == 1
        assert channels_touched(StripingPolicy.ACROSS_CHANNELS, geom) == 8

    def test_labels(self):
        assert StripingPolicy.SAME_BANK.label == "Same Bank"
        assert StripingPolicy.ACROSS_BANKS.label == "Across Banks"
        assert StripingPolicy.ACROSS_CHANNELS.label == "Across Channels"
