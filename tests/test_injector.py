"""Tests for the Poisson fault injector: arrival statistics, stratified
sampling weights, and fault placement."""

import math
import random
from decimal import Decimal, localcontext

import pytest

from repro.errors import ConfigurationError, ContractViolation
from repro.faults.injector import FaultInjector
from repro.faults.rates import FailureRates
from repro.faults.types import FaultKind, Permanence
from repro.reliability.analytic import AnalyticModel
from repro.stack.geometry import LIFETIME_HOURS, StackGeometry


@pytest.fixture
def geom():
    return StackGeometry()


def make_injector(geom, seed=1, **rate_kwargs):
    rates = FailureRates.paper_baseline(**rate_kwargs)
    return FaultInjector(geom, rates, random.Random(seed))


class TestArrivalProcess:
    def test_expected_faults_matches_fit_arithmetic(self, geom):
        inj = make_injector(geom)
        # 409.11 FIT/die * 9 dies * 61320 h * 1e-9
        expected = 409.11 * 9 * LIFETIME_HOURS * 1e-9
        assert inj.expected_faults() == pytest.approx(expected, rel=1e-3)

    def test_tsv_fit_adds_to_total(self, geom):
        base = make_injector(geom).total_rate_per_hour
        with_tsv = make_injector(geom, tsv_device_fit=1430.0).total_rate_per_hour
        assert with_tsv - base == pytest.approx(1430.0e-9)

    def test_mean_fault_count_converges(self, geom):
        inj = make_injector(geom, seed=42)
        lam = inj.expected_faults()
        counts = [len(inj.sample_lifetime()[0]) for _ in range(3000)]
        mean = sum(counts) / len(counts)
        assert mean == pytest.approx(lam, rel=0.1)

    def test_times_sorted_and_within_lifetime(self, geom):
        inj = make_injector(geom, seed=3)
        for _ in range(200):
            faults, _ = inj.sample_lifetime(min_faults=2)
            times = [f.time_hours for f in faults]
            assert times == sorted(times)
            assert all(0 <= t <= LIFETIME_HOURS for t in times)

    def test_zero_rates_rejected(self, geom):
        rates = FailureRates(
            die_fit={FaultKind.BIT: (0.0, 0.0)}, tsv_device_fit=0.0
        )
        with pytest.raises(ConfigurationError):
            FaultInjector(geom, rates)


class TestStratifiedSampling:
    def test_prob_at_least_matches_poisson(self, geom):
        inj = make_injector(geom)
        lam = inj.expected_faults()
        assert inj.prob_at_least(0) == 1.0
        assert inj.prob_at_least(1) == pytest.approx(1 - math.exp(-lam))
        p2 = 1 - math.exp(-lam) * (1 + lam)
        assert inj.prob_at_least(2) == pytest.approx(p2)

    def test_conditioned_sampling_respects_minimum(self, geom):
        inj = make_injector(geom, seed=5)
        for m in (1, 2, 3):
            for _ in range(100):
                faults, weight = inj.sample_lifetime(min_faults=m)
                assert len(faults) >= m
                assert weight == pytest.approx(inj.prob_at_least(m))

    def test_unconditioned_weight_is_one(self, geom):
        inj = make_injector(geom, seed=6)
        _, weight = inj.sample_lifetime()
        assert weight == 1.0

    def test_conditioned_distribution_is_truncated_poisson(self, geom):
        inj = make_injector(geom, seed=7)
        lam = inj.expected_faults()
        counts = [len(inj.sample_lifetime(min_faults=2)[0]) for _ in range(4000)]
        # E[N | N>=2] = (lam - lam*exp(-lam)) / P(N>=2) ... compute directly:
        p2 = 1 - math.exp(-lam) * (1 + lam)
        expected_mean = (lam - lam * math.exp(-lam)) / p2
        mean = sum(counts) / len(counts)
        assert mean == pytest.approx(expected_mean, rel=0.05)


class TestPlacement:
    def _sample_many(self, geom, n=4000, **kw):
        inj = make_injector(geom, seed=11, **kw)
        faults = []
        while len(faults) < n:
            fs, _ = inj.sample_lifetime(min_faults=1)
            faults.extend(fs)
        return faults[:n]

    def test_kind_mix_tracks_rates(self, geom):
        faults = self._sample_many(geom)
        frac_bit = sum(f.kind is FaultKind.BIT for f in faults) / len(faults)
        # (113.6 + 148.8) / 409.11 = 0.641
        assert frac_bit == pytest.approx(0.641, abs=0.04)

    def test_bank_rate_becomes_subarray_faults(self, geom):
        faults = self._sample_many(geom)
        kinds = {f.kind for f in faults}
        assert FaultKind.SUBARRAY in kinds
        assert FaultKind.BANK not in kinds  # transposed per §II-B

    def test_full_bank_mode(self, geom):
        faults = self._sample_many(geom, bank_fault_granularity="full")
        kinds = {f.kind for f in faults}
        assert FaultKind.BANK in kinds
        assert FaultKind.SUBARRAY not in kinds

    def test_dies_cover_metadata_die(self, geom):
        faults = self._sample_many(geom)
        dies = {d for f in faults for d in f.footprint.dies}
        assert dies == set(range(9))

    def test_metadata_die_can_be_excluded(self, geom):
        rates = FailureRates(include_metadata_die=False)
        inj = FaultInjector(geom, rates, random.Random(2))
        faults = []
        while len(faults) < 1000:
            fs, _ = inj.sample_lifetime(min_faults=1)
            faults.extend(fs)
        dies = {d for f in faults for d in f.footprint.dies}
        assert 8 not in dies

    def test_tsv_faults_present_when_rate_set(self, geom):
        faults = self._sample_many(geom, tsv_device_fit=100000.0)
        tsv = [f for f in faults if f.kind.is_tsv]
        assert tsv
        # DTSV:ATSV should be roughly 256:24.
        dtsv = sum(f.kind is FaultKind.DATA_TSV for f in tsv)
        assert dtsv / len(tsv) == pytest.approx(256 / 280, abs=0.05)

    def test_transient_permanent_mix(self, geom):
        faults = self._sample_many(geom)
        transient = sum(f.is_transient for f in faults) / len(faults)
        # 134.66 transient / 409.11 total
        assert transient == pytest.approx(134.66 / 409.11, abs=0.04)


# ---------------------------------------------------------------------- #
# Large-mean Poisson tails (log-space regression)
# ---------------------------------------------------------------------- #
def poisson_tail_reference(lam: float, k: int) -> float:
    """P(N >= k) in arbitrary-precision Decimal (scipy-free ground truth).

    Sums the tail forward from pmf(k); Decimal's huge exponent range means
    nothing underflows, and summing the tail directly (instead of
    ``1 - cdf``) avoids catastrophic cancellation for k >> lam.
    """
    with localcontext() as ctx:
        ctx.prec = 80
        lam_d = Decimal(repr(lam))
        term = (-lam_d).exp()
        for j in range(1, k + 1):
            term = term * lam_d / j
        tail = Decimal(0)
        j = k
        while True:
            tail += term
            j += 1
            term = term * lam_d / j
            if j > lam and term < tail * Decimal("1e-40"):
                break
        return float(tail)


class TestLargeMeanTails:
    """``prob_at_least`` must stay finite-precision-correct for means far
    past the ``exp(-lam) == 0`` underflow point (lam >~ 745)."""

    def _lifetime_for(self, inj, lam):
        """The lifetime at which the injector's Poisson mean equals lam."""
        return lam / inj.total_rate_per_hour

    @pytest.mark.parametrize("lam", [10.0, 700.0, 800.0, 5000.0])
    def test_matches_decimal_reference(self, geom, lam):
        inj = make_injector(geom)
        hours = self._lifetime_for(inj, lam)
        for k in (1, 2, int(lam), 2 * int(lam)):
            got = inj.prob_at_least(k, hours)
            want = poisson_tail_reference(lam, k)
            assert got == pytest.approx(want, rel=1e-9), (lam, k)

    @pytest.mark.parametrize("lam", [10.0, 700.0, 800.0, 5000.0])
    def test_analytic_layer_agrees(self, geom, lam):
        """AnalyticModel shares the tail arithmetic with the injector at
        every mean, not just small ones.  (The two layers accumulate the
        Poisson mean in different orders, so agreement is to rounding,
        not bitwise.)"""
        inj = make_injector(geom)
        hours = self._lifetime_for(inj, lam)
        rates = FailureRates.paper_baseline()
        model = AnalyticModel(geom, rates, lifetime_hours=hours)
        for k in (1, 2, int(lam), 2 * int(lam)):
            assert model.prob_at_least(k) == pytest.approx(
                inj.prob_at_least(k, hours), rel=1e-6
            ), (lam, k)

    def test_underflow_regression_at_800(self, geom):
        """The pre-log-space code returned 1.0 for *every* k once
        exp(-lam) underflowed: the CDF summation never accumulated any
        mass.  P(N >= 2*lam) is astronomically small, and P(N >= lam) is
        about one half — both are distinguishable from 1.0."""
        inj = make_injector(geom)
        hours = self._lifetime_for(inj, 800.0)
        assert math.exp(-800.0) == 0.0  # the underflow that broke it
        near_median = inj.prob_at_least(800, hours)
        assert 0.4 < near_median < 0.6
        far_tail = inj.prob_at_least(1600, hours)
        assert 0.0 < far_tail < 1e-50

    def test_monotone_in_k_across_the_switch(self, geom):
        """Tails decrease in k, including across the prefix/tail branch
        switch at k == lam."""
        inj = make_injector(geom)
        hours = self._lifetime_for(inj, 800.0)
        values = [inj.prob_at_least(k, hours)
                  for k in (1, 400, 790, 800, 810, 1200, 1600)]
        assert values == sorted(values, reverse=True)
        assert all(0.0 < v <= 1.0 for v in values)


class TestTruncatedSamplerGuards:
    def test_conditioned_sampling_refuses_underflowed_mean(self, geom):
        """Inverse-CDF conditioning is meaningless once exp(-lam)
        underflows; the sampler must raise instead of silently returning
        ``minimum`` for every draw (which biased the estimator)."""
        inj = make_injector(geom, seed=13)
        hours = 800.0 / inj.total_rate_per_hour
        with pytest.raises(ConfigurationError):
            inj.sample_count(hours, min_faults=2)

    def test_conditioned_sampling_still_works_below_underflow(self, geom):
        inj = make_injector(geom, seed=13)
        hours = 700.0 / inj.total_rate_per_hour
        count, weight = inj.sample_count(hours, min_faults=2)
        assert count >= 2
        assert weight == inj.prob_at_least(2, hours)


class TestPlaceAtGuard:
    def test_mismatched_lengths_rejected(self, geom):
        inj = make_injector(geom, seed=17)
        faults = inj.sample_kinds(3)
        with pytest.raises(ContractViolation):
            FaultInjector.place_at(faults, [1.0, 2.0])

    def test_matched_lengths_accepted(self, geom):
        inj = make_injector(geom, seed=17)
        faults = inj.sample_kinds(2)
        placed = FaultInjector.place_at(faults, [5.0, 1.0])
        assert [f.time_hours for f in placed] == [1.0, 5.0]
