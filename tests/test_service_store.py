"""Tests for the content-addressed result store.

The store's contract is byte-identity: ``get`` after ``put`` (in this
process or a later one) reproduces exactly the ``to_dict()`` document
that was filed, whether served from the in-memory LRU layer or re-read
from disk.  Eviction, corruption detection, and concurrent access are
covered here; the scheduler-level dedupe built on top of the store is
exercised in ``test_service_scheduler.py``.
"""

import json
import threading

import pytest

from repro.errors import StoreError
from repro.reliability.results import ReliabilityResult
from repro.service.jobs import CampaignSpec, clone_spec
from repro.service.store import ResultStore
from repro.telemetry.registry import MetricsRegistry


def make_spec(seed=0, **overrides):
    overrides.setdefault("scheme", "secded")
    overrides.setdefault("trials", 500)
    return CampaignSpec(seed=seed, **overrides)


def make_result(spec):
    """A deterministic fake result derived from the spec."""
    return ReliabilityResult(
        scheme_name=spec.scheme,
        trials=spec.effective_trials,
        failures=spec.seed % 7,
        lifetime_hours=61320.0,
        failure_times_hours=[100.0 * (i + 1) for i in range(spec.seed % 7)],
    )


class TestRoundTrip:
    def test_put_get_byte_identity(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = make_spec(seed=3)
        result = make_result(spec)
        key = store.put(spec, result)
        assert key == spec.spec_hash()
        fetched = store.get(spec)
        assert fetched is not None
        assert fetched.to_dict() == result.to_dict()

    def test_get_returns_fresh_objects(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = make_spec(seed=3)
        store.put(spec, make_result(spec))
        first = store.get(spec)
        first.failure_times_hours.append(999.0)  # mutate the copy
        assert store.get(spec).to_dict() == make_result(spec).to_dict()

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "store", metrics=MetricsRegistry())
        assert store.get(make_spec()) is None
        assert store.metrics.to_dict()["counters"]["store/misses"] == 1

    def test_persists_across_instances(self, tmp_path):
        spec = make_spec(seed=5)
        result = make_result(spec)
        ResultStore(tmp_path / "store").put(spec, result)
        reopened = ResultStore(tmp_path / "store")
        assert reopened.contains(spec)
        assert len(reopened) == 1
        assert reopened.get(spec).to_dict() == result.to_dict()

    def test_entry_carries_spec_and_result(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = make_spec(seed=2)
        store.put(spec, make_result(spec))
        entry = store.entry(spec)
        assert entry["spec"] == spec.canonical_dict()
        assert entry["spec_hash"] == spec.spec_hash()
        assert entry["result"] == make_result(spec).to_dict()


class TestLRULayers:
    def test_memory_layer_serves_hot_entries(self, tmp_path):
        metrics = MetricsRegistry()
        store = ResultStore(tmp_path / "store", metrics=metrics)
        spec = make_spec(seed=1)
        store.put(spec, make_result(spec))
        store.get(spec)
        counters = metrics.to_dict()["counters"]
        assert counters["store/memory_hits"] == 1
        assert "store/disk_hits" not in counters

    def test_memory_eviction_falls_back_to_disk(self, tmp_path):
        metrics = MetricsRegistry()
        store = ResultStore(
            tmp_path / "store", max_memory_entries=2, metrics=metrics
        )
        specs = [make_spec(seed=i) for i in range(3)]
        for spec in specs:
            store.put(spec, make_result(spec))
        # seed=0 was evicted from memory but survives on disk.
        assert store.get(specs[0]).to_dict() == make_result(specs[0]).to_dict()
        counters = metrics.to_dict()["counters"]
        assert counters["store/memory_evictions"] >= 1
        assert counters["store/disk_hits"] == 1

    def test_disk_eviction_drops_oldest(self, tmp_path):
        metrics = MetricsRegistry()
        store = ResultStore(
            tmp_path / "store", max_disk_entries=2, metrics=metrics
        )
        specs = [make_spec(seed=i) for i in range(3)]
        for spec in specs:
            store.put(spec, make_result(spec))
        assert len(store) == 2
        assert not store.contains(specs[0])
        assert store.contains(specs[1]) and store.contains(specs[2])
        assert metrics.to_dict()["counters"]["store/disk_evictions"] == 1

    def test_get_refreshes_lru_position(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_disk_entries=2)
        specs = [make_spec(seed=i) for i in range(3)]
        store.put(specs[0], make_result(specs[0]))
        store.put(specs[1], make_result(specs[1]))
        store.get(specs[0])  # now seed=1 is the LRU victim
        store.put(specs[2], make_result(specs[2]))
        assert store.contains(specs[0])
        assert not store.contains(specs[1])


class TestIntegrity:
    def test_unreadable_entry_raises(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = make_spec()
        store.put(spec, make_result(spec))
        fresh = ResultStore(tmp_path / "store")
        (tmp_path / "store" / f"{spec.spec_hash()}.json").write_text("{oops")
        with pytest.raises(StoreError, match="unreadable"):
            fresh.get(spec)

    def test_hash_mismatch_raises(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = make_spec(seed=1)
        store.put(spec, make_result(spec))
        path = tmp_path / "store" / f"{spec.spec_hash()}.json"
        entry = json.loads(path.read_text())
        entry["spec"]["seed"] = 999  # tamper: spec no longer matches key
        path.write_text(json.dumps(entry))
        with pytest.raises(StoreError, match="content address"):
            ResultStore(tmp_path / "store").get(spec)

    def test_wrong_schema_raises(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = make_spec()
        store.put(spec, make_result(spec))
        path = tmp_path / "store" / f"{spec.spec_hash()}.json"
        entry = json.loads(path.read_text())
        entry["schema"] = 99
        path.write_text(json.dumps(entry))
        with pytest.raises(StoreError, match="schema"):
            ResultStore(tmp_path / "store").get(spec)

    def test_missing_result_raises(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = make_spec()
        store.put(spec, make_result(spec))
        path = tmp_path / "store" / f"{spec.spec_hash()}.json"
        entry = json.loads(path.read_text())
        del entry["result"]
        path.write_text(json.dumps(entry))
        with pytest.raises(StoreError, match="missing its result"):
            ResultStore(tmp_path / "store").get(spec)


class TestConcurrency:
    def test_concurrent_readers_and_writers(self, tmp_path):
        """Hammer one store from many threads; every read must see
        either nothing or a complete, byte-identical entry."""
        store = ResultStore(tmp_path / "store", max_memory_entries=4)
        specs = [make_spec(seed=i) for i in range(8)]
        expected = {s.spec_hash(): make_result(s).to_dict() for s in specs}
        errors = []
        barrier = threading.Barrier(8)

        def worker(index):
            try:
                barrier.wait()
                spec = specs[index]
                for _ in range(20):
                    store.put(spec, make_result(spec))
                    for other in specs:
                        found = store.get(other)
                        if found is not None:
                            assert found.to_dict() == expected[
                                other.spec_hash()
                            ]
            except Exception as exc:  # surfaced to the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(store) == len(specs)

    def test_concurrent_identical_puts_converge(self, tmp_path):
        """Two threads filing the same spec concurrently leave exactly
        one well-formed entry (atomic rename discipline)."""
        store = ResultStore(tmp_path / "store")
        spec = make_spec(seed=4)
        result = make_result(spec)
        barrier = threading.Barrier(2)

        def put():
            barrier.wait()
            store.put(spec, result)

        threads = [threading.Thread(target=put) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store) == 1
        assert store.get(spec).to_dict() == result.to_dict()


class TestAttachMetrics:
    """REPRO009 regression: the scheduler used to reach into the store
    and assign ``store.metrics`` directly (an unguarded cross-object
    mutation); it now goes through the synchronized ``attach_metrics``."""

    def test_attach_adopts_registry_when_none(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        registry = MetricsRegistry()
        store.attach_metrics(registry)
        assert store.metrics is registry
        spec = make_spec(seed=3)
        store.put(spec, make_result(spec))
        assert registry.counter("store/puts") >= 1

    def test_attach_never_overwrites_injected_registry(self, tmp_path):
        mine = MetricsRegistry()
        store = ResultStore(tmp_path / "store", metrics=mine)
        store.attach_metrics(MetricsRegistry())
        assert store.metrics is mine

    def test_first_attach_wins_under_contention(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        registries = [MetricsRegistry() for _ in range(8)]
        threads = [
            threading.Thread(target=store.attach_metrics, args=(r,))
            for r in registries
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert any(store.metrics is r for r in registries)
