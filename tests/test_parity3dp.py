"""Correctability of Tri-Dimensional Parity (§VI): the peeling model must
reproduce every claim the paper makes about which fault combinations 3DP
corrects, and the 1DP/2DP ablations."""

import pytest

from repro.core.parity3dp import ParityND, make_1dp, make_2dp, make_3dp
from repro.errors import ConfigurationError
from repro.faults.types import (
    Permanence,
    make_addr_tsv_fault,
    make_bank_fault,
    make_bit_fault,
    make_column_fault,
    make_data_tsv_fault,
    make_row_fault,
    make_subarray_fault,
    make_word_fault,
)
from repro.stack.geometry import StackGeometry

P = Permanence.PERMANENT


@pytest.fixture
def geom():
    return StackGeometry()


class TestSingleFaults3DP:
    """3DP corrects every single DRAM fault, small or large (§VI)."""

    @pytest.mark.parametrize("make,args", [
        (make_bit_fault, (0, 0, 10, 100)),
        (make_word_fault, (0, 0, 10, 5)),
        (make_row_fault, (1, 2, 300)),
        (make_column_fault, (2, 3, 42)),
        (make_subarray_fault, (3, 4, 1)),
        (make_bank_fault, (7, 7)),
    ])
    def test_single_dram_fault_correctable(self, geom, make, args):
        fault = make(geom, *args, P)
        assert not make_3dp(geom).is_uncorrectable([fault])

    def test_unswapped_tsv_faults_fatal(self, geom):
        """TSV faults self-alias in all three dimensions — this is exactly
        why Citadel needs TSV-Swap in addition to 3DP."""
        assert make_3dp(geom).is_uncorrectable([make_data_tsv_fault(geom, 0, 5)])
        assert make_3dp(geom).is_uncorrectable([make_addr_tsv_fault(geom, 0, 5)])


class TestDimensionRoles:
    """§VI-D: dims 2/3 isolate small faults; dim 1 corrects large ones."""

    def test_bank_plus_bit_other_die_correctable(self, geom):
        bank = make_bank_fault(geom, 0, 0, P)
        bit = make_bit_fault(geom, 1, 1, 5, 5, P)
        assert not make_3dp(geom).is_uncorrectable([bank, bit])

    def test_bank_plus_bit_same_die_correctable_by_dim3(self, geom):
        bank = make_bank_fault(geom, 0, 0, P)
        bit = make_bit_fault(geom, 0, 1, 5, 5, P)  # same die, other bank
        assert not make_3dp(geom).is_uncorrectable([bank, bit])
        # ...but 2DP (dims 1+2) cannot peel the bit: it aliases the bank
        # fault in dim 1 (rows/cols intersect) and dim 2 (same die).
        assert make_2dp(geom).is_uncorrectable([bank, bit])

    def test_bank_plus_row_same_die_correctable(self, geom):
        bank = make_bank_fault(geom, 0, 0, P)
        row = make_row_fault(geom, 0, 3, 77, P)
        assert not make_3dp(geom).is_uncorrectable([bank, row])

    def test_two_bank_faults_fatal(self, geom):
        a = make_bank_fault(geom, 0, 0, P)
        b = make_bank_fault(geom, 1, 1, P)
        assert make_3dp(geom).is_uncorrectable([a, b])

    def test_two_subarray_faults_same_range_fatal(self, geom):
        a = make_subarray_fault(geom, 0, 0, 2, P)
        b = make_subarray_fault(geom, 1, 1, 2, P)
        assert make_3dp(geom).is_uncorrectable([a, b])

    def test_two_subarray_faults_different_ranges_correctable(self, geom):
        # Disjoint row ranges: different dim-1 groups.
        a = make_subarray_fault(geom, 0, 0, 2, P)
        b = make_subarray_fault(geom, 1, 1, 3, P)
        assert not make_3dp(geom).is_uncorrectable([a, b])

    def test_column_plus_subarray_fatal(self, geom):
        # Both self-alias in dims 2/3 and collide in dim 1.
        col = make_column_fault(geom, 0, 0, 9, P)
        sub = make_subarray_fault(geom, 1, 1, 0, P)
        assert make_3dp(geom).is_uncorrectable([col, sub])

    def test_column_plus_row_correctable(self, geom):
        col = make_column_fault(geom, 0, 0, 9, P)
        row = make_row_fault(geom, 0, 1, 100, P)
        assert not make_3dp(geom).is_uncorrectable([col, row])

    def test_two_columns_different_bits_correctable(self, geom):
        a = make_column_fault(geom, 0, 0, 9, P)
        b = make_column_fault(geom, 1, 1, 10, P)
        assert not make_3dp(geom).is_uncorrectable([a, b])

    def test_two_columns_same_bit_fatal(self, geom):
        a = make_column_fault(geom, 0, 0, 9, P)
        b = make_column_fault(geom, 1, 1, 9, P)
        assert make_3dp(geom).is_uncorrectable([a, b])


class TestNestedFaults:
    """Faults inside an already-faulty region add no new bad bits."""

    def test_bit_inside_failed_bank_correctable(self, geom):
        bank = make_bank_fault(geom, 0, 0, P)
        bit = make_bit_fault(geom, 0, 0, 5, 5, P)  # same bank
        assert not make_3dp(geom).is_uncorrectable([bank, bit])
        assert not make_1dp(geom).is_uncorrectable([bank, bit])

    def test_row_inside_failed_subarray_correctable(self, geom):
        sub = make_subarray_fault(geom, 0, 0, 1, P)
        row = make_row_fault(geom, 0, 0, geom.rows_per_subarray + 5, P)
        assert not make_3dp(geom).is_uncorrectable([sub, row])

    def test_three_bits_same_bank_same_row_correctable(self, geom):
        faults = [
            make_bit_fault(geom, 0, 0, 9, c, P) for c in (3, 700, 1500)
        ]
        assert not make_3dp(geom).is_uncorrectable(faults)


class TestAblations:
    def test_1dp_fails_on_bank_plus_anything_overlapping(self, geom):
        """§VI-A: with one dimension, a single-bit failure after a
        single-bank failure results in data loss."""
        bank = make_bank_fault(geom, 0, 0, P)
        bit = make_bit_fault(geom, 5, 5, 123, 456, P)
        assert make_1dp(geom).is_uncorrectable([bank, bit])
        assert not make_2dp(geom).is_uncorrectable([bank, bit])

    def test_dimension_hierarchy(self, geom):
        """Every set 1DP corrects, 2DP corrects; every set 2DP corrects,
        3DP corrects (on a representative mixed set)."""
        sets = [
            [make_bit_fault(geom, 0, 0, 1, 1, P)],
            [make_row_fault(geom, 0, 0, 1, P), make_bit_fault(geom, 1, 1, 1, 1, P)],
            [make_bank_fault(geom, 2, 2, P), make_row_fault(geom, 2, 3, 9, P)],
            [make_subarray_fault(geom, 0, 0, 0, P),
             make_bit_fault(geom, 0, 1, 5, 5, P)],
        ]
        for faults in sets:
            if not make_1dp(geom).is_uncorrectable(faults):
                assert not make_2dp(geom).is_uncorrectable(faults)
            if not make_2dp(geom).is_uncorrectable(faults):
                assert not make_3dp(geom).is_uncorrectable(faults)

    def test_invalid_dimensions_rejected(self, geom):
        with pytest.raises(ConfigurationError):
            ParityND(geom, frozenset())
        with pytest.raises(ConfigurationError):
            ParityND(geom, frozenset({0, 1}))

    def test_names(self, geom):
        assert make_1dp(geom).name == "1DP"
        assert make_2dp(geom).name == "2DP"
        assert make_3dp(geom).name == "3DP"


class TestMetadataAndOverheads:
    def test_metadata_die_faults_ignored(self, geom):
        meta = make_bank_fault(geom, 8, 0, P)
        assert not make_3dp(geom).is_uncorrectable([meta])
        data = make_bank_fault(geom, 0, 0, P)
        assert not make_3dp(geom).is_uncorrectable([meta, data])

    def test_parity_bank_participates(self, geom):
        """A fault in the dim-1 parity bank plus an aliasing data fault is
        data loss, by XOR symmetry."""
        parity_die, parity_bank = make_3dp(geom).parity_bank
        pb = make_bank_fault(geom, parity_die, parity_bank, P)
        other = make_bank_fault(geom, 0, 0, P)
        assert make_3dp(geom).is_uncorrectable([pb, other])
        assert not make_3dp(geom).is_uncorrectable([pb])

    def test_dram_overhead_is_1_6_percent(self, geom):
        assert make_3dp(geom).storage_overhead_fraction() == pytest.approx(1 / 64)
        assert make_2dp(geom).storage_overhead_fraction() == pytest.approx(1 / 64)

    def test_sram_overhead_is_34kb(self, geom):
        """§VI-C: 9 rows (dim 2) + 8 rows (dim 3) x 2KB = 34 KB."""
        assert make_3dp(geom).sram_overhead_bytes() == 17 * 2048

    def test_peeling_terminates_on_large_sets(self, geom):
        faults = [
            make_bit_fault(geom, d, b, r, c, P)
            for d, b, r, c in [(0, 0, 0, 0), (1, 1, 1, 1), (2, 2, 2, 2),
                               (0, 1, 0, 0), (1, 0, 1, 1)]
        ] + [make_bank_fault(geom, 3, 3, P), make_column_fault(geom, 4, 4, 9, P)]
        make_3dp(geom).is_uncorrectable(faults)  # must not hang
