"""Fast integration tests pinning the paper's key qualitative claims.

These are reduced-trial versions of the benchmark harness: each claim
must hold direction-and-magnitude-wise at test-suite speeds (the benches
and scripts/full_reliability_study.py run the full versions).
"""

import random

import pytest

from repro import EngineConfig, FailureRates, LifetimeSimulator, StackGeometry
from repro.core.parity3dp import make_1dp, make_3dp
from repro.ecc import BCHCode, RAID5, SymbolCode
from repro.perf import PerfConfig, PowerModel, SystemSimulator
from repro.stack.striping import StripingPolicy
from repro.workloads import rate_mode_traces


@pytest.fixture(scope="module")
def geom():
    return StackGeometry()


def mc(geom, model, trials=6000, seed=1, tsv_fit=0.0, **cfg):
    sim = LifetimeSimulator(
        geom,
        FailureRates.paper_baseline(tsv_device_fit=tsv_fit),
        model,
        EngineConfig(**cfg),
        rng=random.Random(seed),
    )
    return sim.run(trials=trials).failure_probability


class TestReliabilityClaims:
    def test_striping_beats_same_bank(self, geom):
        """§II-E / Figure 4."""
        same = mc(geom, SymbolCode(geom, StripingPolicy.SAME_BANK))
        striped = mc(geom, SymbolCode(geom, StripingPolicy.ACROSS_CHANNELS))
        assert same > 20 * striped

    def test_citadel_headline(self, geom):
        """Figure 18: orders of magnitude over the striped symbol code."""
        striped = mc(
            geom, SymbolCode(geom, StripingPolicy.ACROSS_CHANNELS),
            tsv_fit=1430.0, tsv_swap_standby=4,
        )
        citadel = mc(
            geom, make_3dp(geom), trials=60000, tsv_fit=1430.0,
            tsv_swap_standby=4, use_dds=True,
        )
        assert striped > 50 * max(citadel, 1e-7)

    def test_bch_worst_raid_middle(self, geom):
        """Figure 19 ordering."""
        bch = mc(geom, BCHCode(geom))
        raid = mc(geom, RAID5(geom))
        citadel = mc(geom, make_3dp(geom), trials=30000,
                     tsv_swap_standby=4, use_dds=True)
        assert bch > raid > citadel

    def test_1dp_insufficient(self, geom):
        """§VI-A: single-dimension parity cannot handle multiple faults."""
        one = mc(geom, make_1dp(geom))
        three = mc(geom, make_3dp(geom))
        assert one > 2 * three

    def test_unmitigated_tsv_faults_dominate_3dp(self, geom):
        """§V: TSV faults self-alias in every parity dimension."""
        bare = mc(geom, make_3dp(geom), tsv_fit=1430.0)
        swapped = mc(geom, make_3dp(geom), tsv_fit=1430.0, tsv_swap_standby=4)
        assert bare > 20 * swapped


class TestPerformanceClaims:
    @pytest.fixture(scope="class")
    def runs(self, geom):
        traces = rate_mode_traces("milc", geom, requests_per_core=1500, seed=3)
        configs = {
            "base": PerfConfig(),
            "ab": PerfConfig(striping=StripingPolicy.ACROSS_BANKS),
            "ac": PerfConfig(striping=StripingPolicy.ACROSS_CHANNELS),
            "3dp": PerfConfig(parity_protection=True),
        }
        return {
            name: SystemSimulator(geom, cfg).run(traces)
            for name, cfg in configs.items()
        }

    def test_striping_slowdown_ordering(self, runs):
        """Figure 15: base <= 3DP < Across Banks < Across Channels on a
        memory-intensive workload."""
        assert runs["base"].exec_cycles <= runs["3dp"].exec_cycles
        assert runs["3dp"].exec_cycles < runs["ab"].exec_cycles
        assert runs["ab"].exec_cycles < runs["ac"].exec_cycles

    def test_3dp_overhead_small(self, runs):
        assert (
            runs["3dp"].exec_cycles / runs["base"].exec_cycles < 1.10
        )

    def test_striping_power_multiplier(self, geom, runs):
        """Figure 5: striped active power is a multiple of the baseline."""
        pm = PowerModel(geom)
        base = pm.active_power_mw(runs["base"].counters)
        ab = pm.active_power_mw(runs["ab"].counters)
        assert ab > 2.5 * base

    def test_3dp_power_near_baseline(self, geom, runs):
        pm = PowerModel(geom)
        base = pm.active_power_mw(runs["base"].counters)
        dp = pm.active_power_mw(runs["3dp"].counters)
        assert dp / base < 1.2

    def test_parity_cache_hit_rate_high(self, runs):
        """Figure 13: streaming writebacks reuse parity lines heavily."""
        assert runs["3dp"].parity_hit_rate > 0.75


class TestOverheadClaims:
    def test_storage_overhead_vs_ecc_dimm(self, geom):
        """§VII-E: 14% vs the ECC DIMM's 12.5%."""
        from repro.core.citadel import CitadelConfig

        overhead = CitadelConfig(geometry=geom).storage_overhead()
        assert 0.125 < overhead.dram_fraction < 0.15
        assert overhead.dram_fraction - 0.125 == pytest.approx(
            1 / 64, abs=1e-3
        )
