"""Tests for the HTTP API and client.

A real ``ServiceHTTPServer`` is bound to a loopback port for each test
class; :class:`ServiceClient` talks to it over actual sockets, so the
error contract (exception class round-trip through JSON), the endpoint
surface, and the end-to-end byte-identity guarantee are all exercised
exactly as the CLI uses them.  Most tests inject a stub executor; the
end-to-end class runs a real (small) Monte-Carlo campaign and compares
against a direct :class:`ParallelLifetimeRunner` run.
"""

import threading

import pytest

from repro.errors import (
    JobFailedError,
    JobNotFoundError,
    ResultNotReadyError,
    ServiceError,
    ServiceUnavailableError,
    SpecError,
)
from repro.faults.rates import FailureRates
from repro.reliability.parallel import CampaignReport, ParallelLifetimeRunner
from repro.reliability.results import ReliabilityResult
from repro.service.client import ServiceClient
from repro.service.http import make_server
from repro.service.jobs import CampaignSpec
from repro.service.scheduler import CampaignScheduler
from repro.schemes import SCHEMES
from repro.service.store import ResultStore
from repro.stack.geometry import StackGeometry

WAIT_S = 10.0


def make_spec(seed=0, **overrides):
    overrides.setdefault("scheme", "secded")
    overrides.setdefault("trials", 500)
    return CampaignSpec(seed=seed, **overrides)


def stub_executor(spec, workers, cancel_event):
    result = ReliabilityResult(
        scheme_name=spec.scheme,
        trials=spec.effective_trials,
        failures=spec.seed % 5,
        lifetime_hours=61320.0,
    )
    return result, CampaignReport(planned_shards=1, merged_shards=1)


@pytest.fixture
def service(tmp_path):
    """(client, scheduler, server) against a stub-executor scheduler."""
    store = ResultStore(tmp_path / "store")
    scheduler = CampaignScheduler(
        store, slots=2, retry_backoff_s=0.0, executor=stub_executor
    ).start()
    server = make_server(scheduler, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.port}", timeout_s=WAIT_S
    )
    yield client, scheduler, server
    server.shutdown()
    server.server_close()
    scheduler.shutdown()
    thread.join(timeout=WAIT_S)


class TestEndpoints:
    def test_healthz(self, service):
        client, _, _ = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["store_entries"] == 0
        assert set(health["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled"
        }

    def test_submit_wait_fetch(self, service):
        client, _, _ = service
        spec = make_spec(seed=2)
        job = client.submit(spec)
        assert job["state"] in ("queued", "running", "done")
        assert job["spec_hash"] == spec.spec_hash()
        final = client.wait(job["id"], timeout_s=WAIT_S)
        assert final["state"] == "done"
        result = client.result(job["id"])
        assert result.trials == spec.effective_trials
        document = client.result_document(job["id"])
        assert document["job"]["id"] == job["id"]
        assert document["result"] == result.to_dict()

    def test_submit_accepts_plain_mapping(self, service):
        client, _, _ = service
        job = client.submit({"scheme": "secded", "trials": 100, "seed": 9})
        client.wait(job["id"], timeout_s=WAIT_S)
        assert client.result(job["id"]).trials == 100

    def test_jobs_listing(self, service):
        client, _, _ = service
        first = client.submit(make_spec(seed=1))
        client.wait(first["id"], timeout_s=WAIT_S)
        listed = client.jobs()
        assert [job["id"] for job in listed] == [first["id"]]

    def test_resubmit_reports_cache_hit(self, service):
        client, _, _ = service
        spec = make_spec(seed=3)
        first = client.submit(spec)
        client.wait(first["id"], timeout_s=WAIT_S)
        second = client.submit(spec)
        assert second["state"] == "done"
        assert second["cache_hit"] is True
        assert client.result(second["id"]).to_dict() == (
            client.result(first["id"]).to_dict()
        )

    def test_cancel_endpoint(self, service):
        client, scheduler, _ = service
        spec = make_spec(seed=4)
        job = client.submit(spec)
        client.wait(job["id"], timeout_s=WAIT_S)
        # Terminal jobs: DELETE is idempotent and leaves state alone.
        assert client.cancel(job["id"])["state"] == "done"

    def test_metrics_json_and_text(self, service):
        client, _, server = service
        job = client.submit(make_spec(seed=5))
        client.wait(job["id"], timeout_s=WAIT_S)
        metrics = client.metrics()
        assert metrics["counters"]["service/jobs_submitted"] == 1
        assert metrics["counters"]["service/jobs_completed"] == 1
        assert "service/queue_depth" in metrics["gauges"]
        # ?format=text renders the human-readable table.
        import urllib.request

        url = f"http://127.0.0.1:{server.port}/metrics?format=text"
        with urllib.request.urlopen(url, timeout=WAIT_S) as response:
            text = response.read().decode("utf-8")
        assert "service/jobs_submitted" in text


class TestObservabilityEndpoints:
    """ISSUE 8 surface: liveness/readiness split, OpenMetrics content
    negotiation, and the per-endpoint HTTP instrumentation."""

    def test_healthz_reports_ready(self, service):
        client, _, _ = service
        assert client.healthz()["ready"] is True

    def test_readyz_serving(self, service):
        client, _, _ = service
        ready = client.readyz()
        assert ready["ready"] is True
        assert ready["phase"] == "serving"

    def test_readyz_503_while_draining_healthz_stays_200(self, service):
        client, scheduler, _ = service
        scheduler.begin_drain()
        ready = client.readyz()
        assert ready["ready"] is False
        assert ready["phase"] == "draining"
        # Liveness is unaffected: the pod is alive, just not accepting.
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["ready"] is False

    def test_openmetrics_via_accept_header(self, service):
        from repro.telemetry.exposition import parse_openmetrics

        client, _, _ = service
        job = client.submit(make_spec(seed=6))
        client.wait(job["id"], timeout_s=WAIT_S)
        text = client.metrics_openmetrics()
        assert text.endswith("# EOF\n")
        families = parse_openmetrics(text)  # strict: raises on any drift
        assert families["repro_service_jobs_submitted"]["type"] == "counter"
        samples = families["repro_service_jobs_submitted"]["samples"]
        assert samples[0][2] == 1

    def test_openmetrics_via_query_format(self, service):
        import urllib.request

        from repro.telemetry.exposition import (
            OPENMETRICS_CONTENT_TYPE,
            parse_openmetrics,
        )

        client, _, server = service
        url = f"http://127.0.0.1:{server.port}/metrics?format=openmetrics"
        with urllib.request.urlopen(url, timeout=WAIT_S) as response:
            assert response.headers["Content-Type"] == (
                OPENMETRICS_CONTENT_TYPE
            )
            parse_openmetrics(response.read().decode("utf-8"))

    def test_http_requests_and_latency_instrumented(self, service):
        client, _, _ = service
        client.healthz()
        client.healthz()
        metrics = client.metrics()
        assert metrics["counters"]["http/requests/healthz"] >= 2
        hist = metrics["histograms"]["http/latency_seconds/healthz"]
        assert hist["count"] >= 2

    def test_errors_counted_per_endpoint(self, service):
        client, _, _ = service
        with pytest.raises(JobNotFoundError):
            client.job("nope")
        metrics = client.metrics()
        assert metrics["counters"]["http/errors/job"] == 1

    def test_endpoint_label_bounded_cardinality(self):
        from repro.service.http import endpoint_label

        assert endpoint_label("GET", "/healthz") == "healthz"
        assert endpoint_label("GET", "/readyz") == "readyz"
        assert endpoint_label("GET", "/metrics") == "metrics"
        assert endpoint_label("POST", "/jobs") == "submit"
        assert endpoint_label("GET", "/jobs") == "jobs"
        assert endpoint_label("GET", "/jobs/abc123") == "job"
        assert endpoint_label("DELETE", "/jobs/abc123") == "cancel"
        assert endpoint_label("GET", "/jobs/abc123/result") == "result"
        # Adversarial paths collapse onto one label.
        assert endpoint_label("GET", "/bogus/zzz") == "other"
        assert endpoint_label("GET", "/bogus/yyy") == "other"


class TestErrorContract:
    def test_unknown_job_raises_not_found(self, service):
        client, _, _ = service
        with pytest.raises(JobNotFoundError, match="nope"):
            client.job("nope")

    def test_unknown_endpoint_raises_not_found(self, service):
        client, _, _ = service
        with pytest.raises(JobNotFoundError):
            client._request("GET", "/bogus")

    def test_invalid_spec_raises_spec_error(self, service):
        client, _, _ = service
        with pytest.raises(SpecError, match="unknown scheme"):
            client._request(
                "POST", "/jobs", {"spec": {"scheme": "not-a-scheme"}}
            )

    def test_missing_spec_raises_spec_error(self, service):
        client, _, _ = service
        with pytest.raises(SpecError, match="spec"):
            client._request("POST", "/jobs", {"priority": 1})

    def test_result_before_done_raises_not_ready(self, tmp_path):
        gate = threading.Event()
        started = threading.Event()

        def gated_executor(spec, workers, cancel_event):
            started.set()
            gate.wait(WAIT_S)
            return stub_executor(spec, workers, cancel_event)

        store = ResultStore(tmp_path / "store")
        scheduler = CampaignScheduler(
            store, slots=1, executor=gated_executor
        ).start()
        server = make_server(scheduler, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.port}", timeout_s=WAIT_S
        )
        try:
            job = client.submit(make_spec(seed=1))
            started.wait(WAIT_S)
            with pytest.raises(ResultNotReadyError):
                client.result(job["id"])
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            scheduler.shutdown()
            thread.join(timeout=WAIT_S)

    def test_failed_job_result_raises_job_failed(self, tmp_path):
        def failing_executor(spec, workers, cancel_event):
            raise ServiceError("boom")

        store = ResultStore(tmp_path / "store")
        scheduler = CampaignScheduler(
            store,
            slots=1,
            retry_backoff_s=0.0,
            default_max_retries=0,
            executor=failing_executor,
        ).start()
        server = make_server(scheduler, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.port}", timeout_s=WAIT_S
        )
        try:
            job = client.submit(make_spec(seed=1))
            with pytest.raises(JobFailedError, match="failed"):
                client.wait(job["id"], timeout_s=WAIT_S)
            with pytest.raises(JobFailedError):
                client.result(job["id"])
        finally:
            server.shutdown()
            server.server_close()
            scheduler.shutdown()
            thread.join(timeout=WAIT_S)

    def test_unreachable_service_raises_unavailable(self):
        client = ServiceClient("http://127.0.0.1:1", timeout_s=0.5)
        with pytest.raises(ServiceUnavailableError, match="cannot reach"):
            client.healthz()


class TestEndToEnd:
    """The acceptance criterion: a campaign run through the service is
    byte-identical to the same campaign run directly."""

    SPEC = dict(scheme="secded", trials=60, seed=5, shard_size=30)

    def direct_run(self, tmp_path):
        geometry = StackGeometry()
        runner = ParallelLifetimeRunner(
            geometry,
            FailureRates.paper_baseline(tsv_device_fit=0.0),
            SCHEMES["secded"](geometry),
            CampaignSpec(**self.SPEC).engine_config(),
            root_seed=self.SPEC["seed"],
            workers=1,
            shard_size=self.SPEC["shard_size"],
        )
        return runner.run(trials=self.SPEC["trials"])

    def test_service_run_matches_direct_run(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scheduler = CampaignScheduler(store, slots=1).start()  # real executor
        server = make_server(scheduler, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.port}", timeout_s=60.0
        )
        try:
            job = client.submit(CampaignSpec(**self.SPEC), workers=1)
            client.wait(job["id"], timeout_s=60.0)
            via_service = client.result(job["id"])
            direct = self.direct_run(tmp_path)
            assert via_service.to_dict() == direct.to_dict()
            # Resubmission is a pure store hit, still byte-identical.
            again = client.submit(CampaignSpec(**self.SPEC), workers=2)
            assert again["cache_hit"] is True
            assert client.result(again["id"]).to_dict() == direct.to_dict()
            # The wip checkpoint was cleaned up on completion.
            assert list((tmp_path / "store" / "wip").glob("*.json")) == []
        finally:
            server.shutdown()
            server.server_close()
            scheduler.shutdown()
            thread.join(timeout=WAIT_S)
