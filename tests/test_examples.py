"""Smoke tests: every example script must run to completion.

The slower Monte-Carlo examples are exercised with reduced workloads by
importing their building blocks; the functional demo runs end to end.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "fault_injection_demo.py",
        "striping_tradeoff.py",
        "design_space_exploration.py",
        "functional_comparison.py",
    } <= names


def test_functional_comparison_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "functional_comparison.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    # Sequential (scrub-separated) bank failures: Citadel loses nothing.
    line = next(l for l in out.splitlines() if "scrub interval apart" in l)
    assert line.split()[-2] == "192/192"  # Citadel column


def test_fault_injection_demo_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "fault_injection_demo.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    assert "TSV-Swap" in out or "TSV repairs" in out
    assert "lost 0" in out           # the protected stack loses nothing
    assert "without TSV-Swap" in out  # the bare stack does


def test_design_space_exploration_runs_small():
    proc = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES / "design_space_exploration.py"),
            "--trials",
            "500",
        ],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Citadel" in proc.stdout
    assert "SECDED" in proc.stdout


@pytest.mark.parametrize(
    "script", ["quickstart.py", "striping_tradeoff.py"]
)
def test_remaining_examples_compile(script):
    """The heavyweight examples are compile-checked here (their full runs
    are exercised manually / in the docs); the logic they wrap is covered
    by the integration tests."""
    source = (EXAMPLES / script).read_text()
    compile(source, script, "exec")
