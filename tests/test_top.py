"""Tests for the `repro top` dashboard.

Rendering is a pure function of two :class:`TopSample` polls, so the
unit tests assert exact dashboard lines from synthetic samples; the e2e
class points the real poll loop at a live in-process service (the same
fixture shape as ``test_service_http.py``) and also exercises the
liveness/readiness split across a drain.
"""

import io
import threading

import pytest

from repro.reliability.results import ReliabilityResult
from repro.reliability.parallel import CampaignReport
from repro.service.client import ServiceClient
from repro.service.http import make_server
from repro.service.jobs import CampaignSpec
from repro.service.scheduler import CampaignScheduler
from repro.service.store import ResultStore
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.top import (
    CLEAR_SCREEN,
    TopSample,
    render_dashboard,
    run_top,
    trials_per_second,
)

WAIT_S = 10.0


def stub_executor(spec, workers, cancel_event):
    result = ReliabilityResult(
        scheme_name=spec.scheme,
        trials=spec.effective_trials,
        failures=spec.seed % 5,
        lifetime_hours=61320.0,
    )
    return result, CampaignReport(planned_shards=1, merged_shards=1)


@pytest.fixture
def service(tmp_path):
    store = ResultStore(tmp_path / "store")
    scheduler = CampaignScheduler(
        store, slots=2, retry_backoff_s=0.0, executor=stub_executor
    ).start()
    server = make_server(scheduler, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.port}", timeout_s=WAIT_S
    )
    yield client, scheduler, server
    server.shutdown()
    server.server_close()
    scheduler.shutdown()
    thread.join(timeout=WAIT_S)


def make_sample(at=0.0, trials=0, ready=True, ci_width=None, latency=False):
    registry = MetricsRegistry()
    if trials:
        registry.inc("service/trials_executed", trials, volatile=True)
    registry.gauge_set("service/inflight_jobs", 1.0, volatile=True)
    registry.gauge_set("service/oldest_job_age_seconds", 2.5, volatile=True)
    if ci_width is not None:
        registry.gauge_set("campaign/ci_width", ci_width)
        registry.gauge_set("campaign/effective_failures", 9.0)
        registry.inc("campaign/trials_saved", 400)
    if latency:
        registry.inc("http/requests/healthz", 4, volatile=True)
        registry.inc("http/errors/healthz", 1, volatile=True)
        for value in (0.002, 0.004):
            registry.observe(
                "http/latency_seconds/healthz",
                value,
                edges=(0.001, 0.005, 0.025),
                volatile=True,
            )
    healthz = {
        "status": "ok",
        "ready": ready,
        "queue_depth": 3,
        "store_entries": 7,
        "jobs": {"queued": 3, "running": 1, "done": 2, "failed": 0,
                 "cancelled": 0},
    }
    return TopSample(healthz=healthz, metrics=registry, at=at)


class TestTrialsPerSecond:
    def test_none_without_previous_sample(self):
        assert trials_per_second(make_sample(), None) is None

    def test_counter_delta_over_elapsed_time(self):
        previous = make_sample(at=10.0, trials=1000)
        current = make_sample(at=12.0, trials=1500)
        assert trials_per_second(current, previous) == pytest.approx(250.0)

    def test_non_positive_elapsed_returns_none(self):
        previous = make_sample(at=5.0)
        assert trials_per_second(make_sample(at=5.0), previous) is None

    def test_counter_reset_clamps_to_zero(self):
        previous = make_sample(at=0.0, trials=500)
        current = make_sample(at=1.0, trials=100)
        assert trials_per_second(current, previous) == 0.0


class TestRenderDashboard:
    def test_header_and_core_lines(self):
        text = render_dashboard(make_sample())
        lines = text.splitlines()
        assert lines[0] == "repro top — service ok"
        assert lines[1] == (
            "jobs      queued:3  running:1  done:2  failed:0  cancelled:0"
        )
        assert lines[2] == (
            "queue     depth:3  inflight:1  oldest:2.5s  store:7"
        )
        assert lines[3] == "trials    executed:0  rate:-/s"

    def test_not_ready_flagged_in_header(self):
        text = render_dashboard(make_sample(ready=False))
        assert text.splitlines()[0] == "repro top — service ok (NOT READY)"

    def test_rate_from_previous_sample(self):
        previous = make_sample(at=0.0, trials=100)
        current = make_sample(at=2.0, trials=300)
        text = render_dashboard(current, previous)
        assert "trials    executed:300  rate:100/s" in text

    def test_stopping_line_only_with_ci_gauge(self):
        assert "stopping" not in render_dashboard(make_sample())
        text = render_dashboard(make_sample(ci_width=1.25e-3))
        assert (
            "stopping  ci_width:1.250e-03  effective_failures:9.0"
            "  trials_saved:400"
        ) in text

    def test_endpoint_table(self):
        text = render_dashboard(make_sample(latency=True))
        assert (
            "endpoint           reqs  errs    p50      p90      p99"
        ) in text
        # Both observations fall in the (0.001, 0.005] bucket, so every
        # quantile reports that bucket's deterministic edge (clamped to
        # the max observed value 0.004).
        assert "  healthz             4     1  0.00400  0.00400  0.00400" \
            in text

    def test_render_is_pure(self):
        sample = make_sample(latency=True, ci_width=0.5)
        assert render_dashboard(sample) == render_dashboard(sample)


class FakeClient:
    """Duck-typed client: canned healthz/metrics documents per poll."""

    def __init__(self, frames):
        self.frames = list(frames)
        self.calls = 0

    def healthz(self):
        return self.frames[min(self.calls, len(self.frames) - 1)][0]

    def metrics(self):
        frame = self.frames[min(self.calls, len(self.frames) - 1)][1]
        self.calls += 1
        return frame


class TestRunTop:
    def make_frames(self, count):
        frames = []
        for index in range(count):
            sample = make_sample(trials=100 * index or 0)
            frames.append((sample.healthz, sample.metrics.to_dict()))
        return frames

    def test_fixed_iterations_with_injected_clock_and_sleep(self):
        client = FakeClient(self.make_frames(3))
        ticks = iter([0.0, 1.0, 2.0])
        slept = []
        stream = io.StringIO()
        frames = run_top(
            client,
            iterations=3,
            interval_s=1.5,
            stream=stream,
            clock=lambda: next(ticks),
            sleep=slept.append,
        )
        assert frames == 3
        assert slept == [1.5, 1.5]  # no sleep after the final frame
        output = stream.getvalue()
        assert output.count("repro top — service ok") == 3
        assert "rate:100/s" in output  # delta math across frames

    def test_clear_prepends_ansi_sequence(self):
        stream = io.StringIO()
        run_top(
            FakeClient(self.make_frames(2)),
            iterations=2,
            interval_s=0.0,
            stream=stream,
            clock=iter([0.0, 1.0]).__next__,
            sleep=lambda _s: None,
            clear=True,
        )
        assert stream.getvalue().count(CLEAR_SCREEN) == 2


class TestTopAgainstLiveService:
    def test_polls_real_service(self, service):
        client, _, _ = service
        job = client.submit(CampaignSpec(scheme="secded", trials=200, seed=1))
        client.wait(job["id"], timeout_s=WAIT_S)
        stream = io.StringIO()
        frames = run_top(
            client,
            iterations=2,
            interval_s=0.0,
            stream=stream,
            sleep=lambda _s: None,
        )
        assert frames == 2
        output = stream.getvalue()
        assert "repro top — service ok" in output
        assert "executed:200" in output
        # The poll itself shows up in the endpoint latency table.
        assert "endpoint" in output
        assert "healthz" in output

    def test_drain_shows_not_ready(self, service):
        client, scheduler, _ = service
        assert client.readyz()["ready"] is True
        scheduler.begin_drain()
        ready = client.readyz()
        assert ready["ready"] is False
        assert ready["phase"] == "draining"
        # Liveness stays up, and the dashboard surfaces the state.
        stream = io.StringIO()
        run_top(client, iterations=1, stream=stream,
                sleep=lambda _s: None)
        assert "(NOT READY)" in stream.getvalue()
