"""Shared fixtures for the test suite."""

import random

import pytest

from repro.stack.geometry import StackGeometry


@pytest.fixture
def geometry():
    """The paper's full baseline geometry (Table II)."""
    return StackGeometry()


@pytest.fixture
def small_geometry():
    """Scaled-down geometry for functional tests."""
    return StackGeometry.small()


@pytest.fixture
def rng():
    return random.Random(0xC17ADE1)
