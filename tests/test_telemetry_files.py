"""Tests for the atomic file helpers.

The load-bearing property is concurrent-writer safety: every writer
renames its own ``mkstemp`` file, so a reader polling the target during
a storm of simultaneous writes must only ever observe one writer's
complete output — never a torn interleaving, never a missing file once
the first write has landed.
"""

import json
import threading

from repro.telemetry.files import atomic_write_text, write_json_atomic


class TestAtomicWriteText:
    def test_writes_and_returns_path(self, tmp_path):
        target = tmp_path / "artifact.txt"
        assert atomic_write_text(target, "hello\n") == target
        assert target.read_text() == "hello\n"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "artifact.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_overwrites_previous_content(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_fsync_variant_writes_identically(self, tmp_path):
        target = tmp_path / "durable.txt"
        atomic_write_text(target, "payload", fsync=True)
        assert target.read_text() == "payload"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "artifact.txt"
        for index in range(5):
            atomic_write_text(target, f"write {index}")
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]

    def test_concurrent_writers_never_tear(self, tmp_path):
        """Writer storm on one target: readers see complete payloads only.

        Each writer repeatedly writes a self-describing payload (its id
        repeated, so truncation or interleaving is detectable) while a
        reader thread polls the target.  With the old fixed ``.tmp``
        sidecar path two writers would open the same temp file and the
        reader could observe a mix; with per-writer ``mkstemp`` names
        every observed content must match exactly one writer.
        """
        target = tmp_path / "contended.txt"
        writers = 8
        rounds = 40
        payloads = {
            f"writer-{i}": (f"writer-{i};" * 200) + "END"
            for i in range(writers)
        }
        valid = set(payloads.values())
        torn = []
        stop = threading.Event()

        def write_loop(payload):
            for _ in range(rounds):
                atomic_write_text(target, payload)

        def read_loop():
            while not stop.is_set():
                try:
                    content = target.read_text()
                except FileNotFoundError:
                    continue
                if content not in valid:
                    torn.append(content[:80])
                    return

        reader = threading.Thread(target=read_loop)
        threads = [
            threading.Thread(target=write_loop, args=(payload,))
            for payload in payloads.values()
        ]
        reader.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        stop.set()
        reader.join(timeout=30.0)
        assert torn == [], f"observed torn content: {torn[:1]}"
        assert target.read_text() in valid
        # The storm cleaned up after itself: no .tmp litter.
        assert [p.name for p in tmp_path.iterdir()] == ["contended.txt"]


class TestWriteJsonAtomic:
    def test_stable_indented_json(self, tmp_path):
        target = tmp_path / "doc.json"
        write_json_atomic(target, {"b": 2, "a": 1})
        text = target.read_text()
        assert text == '{\n "a": 1,\n "b": 2\n}\n'
        assert json.loads(text) == {"a": 1, "b": 2}

    def test_deterministic_bytes(self, tmp_path):
        payload = {"z": [3, 2, 1], "a": {"nested": True}}
        first = write_json_atomic(tmp_path / "a.json", payload).read_text()
        second = write_json_atomic(tmp_path / "b.json", payload).read_text()
        assert first == second
