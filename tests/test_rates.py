"""Tests for FIT tables: Table I must be reproduced exactly from the 1 Gb
field data and the paper's scaling rules."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.rates import (
    SRIDHARAN_1GB_FIT,
    TABLE_I_8GB_FIT,
    TSV_FIT_HIGH,
    TSV_FIT_SWEEP,
    FailureRates,
    scale_die_rates,
)
from repro.faults.types import FaultKind, Permanence


class TestTableI:
    """Exact values from Table I of the paper."""

    @pytest.mark.parametrize(
        "kind,transient,permanent",
        [
            (FaultKind.BIT, 113.6, 148.8),
            (FaultKind.WORD, 11.2, 2.4),
            (FaultKind.COLUMN, 2.66, 10.45),
            (FaultKind.ROW, 0.8, 32.8),
            (FaultKind.BANK, 6.4, 80.0),
        ],
    )
    def test_scaled_rates(self, kind, transient, permanent):
        got_t, got_p = TABLE_I_8GB_FIT[kind]
        assert got_t == pytest.approx(transient, abs=0.11)
        assert got_p == pytest.approx(permanent, abs=0.11)

    def test_scaling_is_pure_function(self):
        assert scale_die_rates() == TABLE_I_8GB_FIT

    def test_base_rates_cover_all_dram_kinds(self):
        assert set(SRIDHARAN_1GB_FIT) == {
            FaultKind.BIT,
            FaultKind.WORD,
            FaultKind.COLUMN,
            FaultKind.ROW,
            FaultKind.BANK,
        }

    def test_tsv_sweep_range(self):
        assert min(TSV_FIT_SWEEP) == 14.0
        assert max(TSV_FIT_SWEEP) == 1430.0
        assert TSV_FIT_HIGH == 1430.0


class TestFailureRates:
    def test_defaults_to_table_i(self):
        rates = FailureRates()
        assert rates.die_fit == dict(TABLE_I_8GB_FIT)
        assert rates.tsv_device_fit == 0.0

    def test_rate_lookup(self):
        rates = FailureRates()
        assert rates.rate(FaultKind.ROW, Permanence.TRANSIENT) == pytest.approx(0.8)
        assert rates.rate(FaultKind.ROW, Permanence.PERMANENT) == pytest.approx(32.8)

    def test_die_total(self):
        rates = FailureRates()
        expected = sum(t + p for t, p in TABLE_I_8GB_FIT.values())
        assert rates.die_total_fit() == pytest.approx(expected)
        assert rates.die_total_fit() == pytest.approx(409.11, abs=0.5)

    def test_with_tsv_fit(self):
        rates = FailureRates().with_tsv_fit(1430.0)
        assert rates.tsv_device_fit == 1430.0
        assert rates.without_tsv_faults().tsv_device_fit == 0.0

    def test_rejects_negative_tsv_fit(self):
        with pytest.raises(ConfigurationError):
            FailureRates(tsv_device_fit=-1.0)

    def test_rejects_tsv_kind_in_die_fit(self):
        with pytest.raises(ConfigurationError):
            FailureRates(die_fit={FaultKind.DATA_TSV: (1.0, 1.0)})

    def test_rejects_negative_die_fit(self):
        with pytest.raises(ConfigurationError):
            FailureRates(die_fit={FaultKind.BIT: (-1.0, 1.0)})

    def test_rejects_bad_bank_granularity(self):
        with pytest.raises(ConfigurationError):
            FailureRates(bank_fault_granularity="die")

    def test_paper_baseline_helper(self):
        rates = FailureRates.paper_baseline(tsv_device_fit=143.0)
        assert rates.tsv_device_fit == 143.0
        assert rates.bank_fault_granularity == "subarray"
