"""Tests for the trace-replay co-simulation subsystem (``repro.replay``).

Covers the full stack the replay PR introduced: timeline export from
the reliability engine, the perturbation state machine driving the
performance simulator, the thermal FIT feedback proxy, the
:class:`ReplayResult` monoid, the sharded/resumable campaign runner's
worker-count byte identity, the ``repro replay`` CLI, and the campaign
service's replay mode (spec canonicalization, store dispatch).
"""

import json

import pytest

from repro.core.parity3dp import make_3dp
from repro.errors import CheckpointError, MergeError, SpecError
from repro.faults.injector import FaultInjector, ThermalFaultInjector
from repro.faults.rates import FailureRates
from repro.reliability.montecarlo import EngineConfig, LifetimeSimulator
from repro.replay import (
    DEFAULT_REPLAY_SHARD_SIZE,
    FaultTimeline,
    ReplayCampaignRunner,
    ReplayConfig,
    ReplayEngine,
    ReplayPerturbation,
    ReplayResult,
    TimelineEvent,
    build_timeline,
    thermal_bank_multipliers,
)
from repro.schemes import SCHEMES
from repro.stack.geometry import StackGeometry
from repro.workloads.trace import MemoryRequest, Trace
from repro.stack.address import LineLocation


@pytest.fixture
def geom():
    return StackGeometry()


def citadel_sim(geom, seed=0, tsv_fit=500.0, **cfg):
    defaults = dict(tsv_swap_standby=4, use_dds=True)
    defaults.update(cfg)
    return LifetimeSimulator(
        geom,
        FailureRates.paper_baseline(tsv_device_fit=tsv_fit),
        make_3dp(geom),
        EngineConfig(**defaults),
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# Timeline export
# ---------------------------------------------------------------------- #
class TestTimeline:
    def test_events_sorted_and_weight_matches_injector(self, geom):
        sim = citadel_sim(geom, seed=7)
        min_faults = sim.default_min_faults()
        timeline = build_timeline(sim, min_faults)
        keys = [(e.time_hours, e.seq) for e in timeline.events]
        assert keys == sorted(keys)
        expected = sim.injector.prob_at_least(
            min_faults, sim.config.lifetime_hours
        )
        assert timeline.weight == expected

    def test_recorder_does_not_change_the_verdict(self, geom):
        """Recording is observational: a recorded trial must fail (or
        survive) exactly when the unrecorded same-seed trial does."""
        for seed in range(12):
            recorded = build_timeline(citadel_sim(geom, seed=seed), 2)
            sim = citadel_sim(geom, seed=seed)
            faults, _ = sim.injector.sample_lifetime(
                sim.config.lifetime_hours, min_faults=2
            )
            outcome = sim.simulate_history(faults)
            assert recorded.failed == (outcome is not None)

    def test_same_seed_identical_timelines(self, geom):
        a = build_timeline(citadel_sim(geom, seed=3), 2)
        b = build_timeline(citadel_sim(geom, seed=3), 2)
        assert a == b

    def test_events_carry_no_process_local_state(self, geom):
        """``Fault.uid`` is a process-local counter and must never leak
        into a timeline (it would break cross-process byte identity)."""
        timeline = build_timeline(citadel_sim(geom, seed=5), 2)
        assert timeline.events
        for event in timeline.events:
            assert not hasattr(event, "uid")

    def test_event_validation(self):
        with pytest.raises(Exception):
            TimelineEvent(seq=-1, time_hours=0.0, kind="fault")
        with pytest.raises(Exception):
            TimelineEvent(seq=0, time_hours=0.0, kind="fault", channel=-2)


# ---------------------------------------------------------------------- #
# Perturbation state machine
# ---------------------------------------------------------------------- #
def make_timeline(events, lifetime=100.0, failed=False):
    return FaultTimeline(
        lifetime_hours=lifetime,
        events=tuple(events),
        weight=1.0,
        num_faults=sum(e.kind == "fault" for e in events),
        failed=failed,
        failure_time_hours=None,
    )


def request_at(channel=0, bank=0):
    return MemoryRequest(
        gap_cycles=0,
        is_write=False,
        home=LineLocation(channel=channel, bank=bank, row=0, slot=0),
    )


class TestPerturbation:
    def test_degraded_bank_pays_correction_latency(self, geom):
        timeline = make_timeline([
            TimelineEvent(seq=0, time_hours=0.0, kind="fault",
                          fault_kind="bank", dies=(0,), banks=(3,),
                          detail="permanent"),
        ])
        hook = ReplayPerturbation(timeline, geom, total_requests=100)
        hit = hook.on_request(0, request_at(channel=0, bank=3), now=0)
        assert hit is not None and hit.delay_cycles == 8
        miss = hook.on_request(1, request_at(channel=0, bank=4), now=0)
        assert miss is None

    def test_scrub_clears_transients_and_injects_reads(self, geom):
        timeline = make_timeline([
            TimelineEvent(seq=0, time_hours=0.0, kind="fault",
                          fault_kind="row", dies=(0,), banks=(1,),
                          detail="transient"),
            TimelineEvent(seq=1, time_hours=50.0, kind="scrub", dropped=1),
        ])
        hook = ReplayPerturbation(timeline, geom, total_requests=100)
        before = hook.on_request(0, request_at(bank=1), now=0)
        assert before is not None and before.delay_cycles == 8
        at_scrub = hook.on_request(50, request_at(bank=1), now=0)
        # The scrub pass clears the transient degradation and injects a
        # bounded burst of background reads.
        assert at_scrub is not None
        assert at_scrub.delay_cycles == 0
        assert len(at_scrub.extra_accesses) == 8
        assert all(not w for _, w in at_scrub.extra_accesses)
        after = hook.on_request(51, request_at(bank=1), now=0)
        assert after is None

    def test_dds_remap_converts_degradation_to_indirection(self, geom):
        timeline = make_timeline([
            TimelineEvent(seq=0, time_hours=0.0, kind="fault",
                          fault_kind="row", dies=(0,), banks=(2,),
                          detail="permanent"),
            TimelineEvent(seq=1, time_hours=50.0, kind="dds_remap",
                          fault_kind="row", dies=(0,), banks=(2,),
                          detail="row"),
        ])
        hook = ReplayPerturbation(timeline, geom, total_requests=100)
        degraded = hook.on_request(0, request_at(bank=2), now=0)
        assert degraded is not None and degraded.delay_cycles == 8
        remap = hook.on_request(50, request_at(bank=2), now=0)
        # Copy traffic: 2 lines per "row" remap, (read source, write
        # spare) each; thereafter the bank costs only the RRT lookup.
        assert remap is not None
        assert len(remap.extra_accesses) == 4
        assert remap.delay_cycles == 1
        later = hook.on_request(60, request_at(bank=2), now=0)
        assert later is not None and later.delay_cycles == 1

    def test_tsv_swap_taxes_the_whole_channel(self, geom):
        timeline = make_timeline([
            TimelineEvent(seq=0, time_hours=0.0, kind="tsv_swap",
                          fault_kind="data_tsv", channel=1),
        ])
        hook = ReplayPerturbation(timeline, geom, total_requests=100)
        on = hook.on_request(0, request_at(channel=1, bank=5), now=0)
        assert on is not None and on.delay_cycles == 2
        off = hook.on_request(1, request_at(channel=0, bank=5), now=0)
        assert off is None

    def test_events_are_deterministic_given_a_timeline(self, geom):
        timeline = make_timeline([
            TimelineEvent(seq=0, time_hours=10.0, kind="scrub"),
            TimelineEvent(seq=1, time_hours=20.0, kind="scrub"),
        ])
        def collect():
            hook = ReplayPerturbation(timeline, geom, total_requests=100)
            return [
                hook.on_request(i, request_at(), now=i) for i in range(40)
            ]
        assert collect() == collect()


# ---------------------------------------------------------------------- #
# Thermal feedback
# ---------------------------------------------------------------------- #
class TestThermalFeedback:
    def test_idle_activity_means_no_feedback(self, geom):
        flat = [[0] * geom.banks_per_die for _ in range(geom.channels)]
        assert thermal_bank_multipliers(flat, geom) == tuple(
            1.0 for _ in range(geom.banks_per_die)
        )

    def test_peak_bank_doubles_fit(self, geom):
        activity = [[0] * geom.banks_per_die]
        activity[0][3] = 1000
        multipliers = thermal_bank_multipliers(activity, geom)
        assert multipliers[3] == 2.0  # +10 degC at the peak -> 2x FIT
        assert multipliers[0] == 1.0

    def test_thermal_injector_prefers_hot_banks(self, geom):
        rates = FailureRates.paper_baseline()
        hot = tuple(
            4.0 if bank == 0 else 1.0
            for bank in range(geom.banks_per_die)
        )
        injector = ThermalFaultInjector(geom, rates, multipliers=hot, seed=9)
        counts = [0] * geom.banks_per_die
        for _ in range(2000):
            counts[injector._sample_bank()] += 1
        assert counts[0] > 2 * max(counts[1:])

    def test_thermal_injector_scales_total_rate(self, geom):
        rates = FailureRates.paper_baseline()
        base = FaultInjector(geom, rates, seed=0)
        flat = ThermalFaultInjector(
            geom, rates,
            multipliers=tuple(2.0 for _ in range(geom.banks_per_die)),
            seed=0,
        )
        # Uniform 2x multipliers double every non-TSV entry rate, so the
        # tail probability (and the stratum weight) moves with them.
        assert flat.prob_at_least(1, 1000.0) > base.prob_at_least(1, 1000.0)

    def test_engine_config_default_keeps_plain_injector(self, geom):
        sim = citadel_sim(geom, seed=0)
        assert type(sim.injector) is FaultInjector
        with_thermal = citadel_sim(
            geom, seed=0,
            thermal_bank_fit=tuple(
                1.5 for _ in range(geom.banks_per_die)
            ),
        )
        assert type(with_thermal.injector) is ThermalFaultInjector


# ---------------------------------------------------------------------- #
# ReplayResult monoid
# ---------------------------------------------------------------------- #
def shard(engine, seed, trials=2):
    return engine.run_shard(seed, trials, trace_seed=123)


@pytest.fixture
def engine(geom):
    return ReplayEngine(
        geom,
        FailureRates.paper_baseline(tsv_device_fit=500.0),
        make_3dp(geom),
        EngineConfig(tsv_swap_standby=4, use_dds=True),
        ReplayConfig(workload="zipfian", cores=2, requests_per_core=64),
    )


class TestReplayResultMonoid:
    def test_identity_element(self, engine):
        a = shard(engine, seed=1)
        assert ReplayResult.identity().merge(a) == a
        assert a.merge(ReplayResult.identity()) == a

    def test_merge_is_order_insensitive(self, engine):
        a, b, c = (shard(engine, seed=s) for s in (1, 2, 3))
        left = a.merge(b).merge(c)
        right = c.merge(a).merge(b)
        assert left == right
        assert json.dumps(left.to_dict()) == json.dumps(right.to_dict())

    def test_incompatible_shards_refuse_to_merge(self, engine, geom):
        other_engine = ReplayEngine(
            geom,
            FailureRates.paper_baseline(tsv_device_fit=500.0),
            make_3dp(geom),
            EngineConfig(tsv_swap_standby=4, use_dds=True),
            ReplayConfig(workload="bursty", cores=2, requests_per_core=64),
        )
        with pytest.raises(MergeError):
            shard(engine, seed=1).merge(shard(other_engine, seed=1))

    def test_round_trip_is_byte_identical(self, engine):
        a = shard(engine, seed=1)
        again = ReplayResult.from_dict(
            json.loads(json.dumps(a.to_dict()))
        )
        assert json.dumps(a.to_dict()) == json.dumps(again.to_dict())

    def test_thermal_key_absent_when_feedback_off(self, engine):
        assert "thermal_multipliers" not in shard(engine, seed=1).to_dict()

    def test_estimators(self, engine):
        a = shard(engine, seed=1, trials=3)
        assert a.trials == 3
        assert a.mean_slowdown >= 1.0
        assert a.worst_slowdown >= a.mean_slowdown or (
            a.worst_slowdown == pytest.approx(a.mean_slowdown)
        )
        assert a.mean_energy_overhead > 1.0
        summary = a.summary()
        assert summary["workload"] == "zipfian"
        assert summary["trials"] == 3


# ---------------------------------------------------------------------- #
# Campaign runner: worker-count and resume byte identity
# ---------------------------------------------------------------------- #
def make_runner(geom, workers=1, thermal=False, checkpoint=None,
                resume=False, **kw):
    return ReplayCampaignRunner(
        geom,
        FailureRates.paper_baseline(tsv_device_fit=500.0),
        make_3dp(geom),
        EngineConfig(tsv_swap_standby=4, use_dds=True),
        ReplayConfig(
            workload="zipfian", cores=2, requests_per_core=64,
            thermal=thermal,
        ),
        root_seed=42,
        workers=workers,
        shard_size=2,
        checkpoint_path=checkpoint,
        resume=resume,
        **kw,
    )


class TestReplayCampaignRunner:
    def test_workers_1_vs_4_serialize_byte_identically(self, geom):
        a = make_runner(geom, workers=1).run(trials=6)
        b = make_runner(geom, workers=4).run(trials=6)
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())

    def test_checkpoint_resume_is_byte_identical(self, geom, tmp_path):
        ckpt = tmp_path / "replay.ckpt.json"
        fresh = make_runner(geom, checkpoint=ckpt).run(trials=6)
        assert ckpt.exists()
        resumed = make_runner(
            geom, workers=4, checkpoint=ckpt, resume=True
        ).run(trials=6)
        assert json.dumps(fresh.to_dict()) == json.dumps(resumed.to_dict())

    def test_checkpoint_of_other_campaign_rejected(self, geom, tmp_path):
        ckpt = tmp_path / "replay.ckpt.json"
        make_runner(geom, checkpoint=ckpt).run(trials=4)
        other = make_runner(geom, checkpoint=ckpt, resume=True,
                            thermal=True)
        with pytest.raises(CheckpointError):
            other.run(trials=4)

    def test_zero_trials_is_the_identity(self, geom):
        result = make_runner(geom).run(trials=0)
        assert result.is_identity

    def test_thermal_feedback_changes_the_sampled_stratum(self, geom):
        base = make_runner(geom).run(trials=4)
        hot = make_runner(geom, thermal=True).run(trials=4)
        # Thermal multipliers scale the injector rates, so the stratum
        # weight must move; the baseline perf/power stays shared.
        assert hot.stratum_weight != base.stratum_weight
        assert hot.baseline_exec_cycles == base.baseline_exec_cycles
        assert hot.to_dict()["thermal_multipliers"]

    def test_metrics_snapshot_attached_and_mergeable(self, geom):
        result = make_runner(geom, workers=2,
                             collect_metrics=True).run(trials=4)
        assert result.metrics is not None
        registry = result.metrics
        assert registry.counter("replay/trials") == 4
        assert registry.counter("replay/requests") > 0


# ---------------------------------------------------------------------- #
# Reliability results must not move with the replay feature off
# ---------------------------------------------------------------------- #
class TestReliabilityUnperturbed:
    def test_default_engine_config_has_no_thermal_feedback(self):
        assert EngineConfig().thermal_bank_fit is None

    def test_reliability_results_byte_identical_with_replay_imported(
        self, geom
    ):
        """Importing/running replay machinery must not consume RNG draws
        from, or otherwise perturb, a plain reliability run."""
        def run():
            return citadel_sim(geom, seed=42).run(trials=300)
        before = run()
        build_timeline(citadel_sim(geom, seed=9), 2)  # exercise replay
        after = run()
        assert before == after
        assert json.dumps(before.to_dict()) == json.dumps(after.to_dict())


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestReplayCli:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["replay"])
        assert args.scheme == "citadel"
        assert args.workload == "zipfian"
        assert args.trials == 32
        assert args.shard_size is None

    def test_small_joint_report(self, capsys):
        from repro.cli import main

        rc = main([
            "replay", "--trials", "2", "--requests", "64", "--cores", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean slowdown" in out
        assert "mean energy overhead" in out

    def test_json_document_has_all_three_sections(self, capsys):
        from repro.cli import main

        rc = main([
            "replay", "--trials", "2", "--requests", "64", "--cores", "2",
            "--json",
        ])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document) == {
            "replay", "reliability", "performance", "power"
        }
        assert document["replay"]["trials"] == 2
        assert document["performance"]["baseline_exec_cycles"] > 0
        assert document["power"]["baseline_energy_nj"] > 0

    def test_unknown_workload_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--workload", "nope"])


# ---------------------------------------------------------------------- #
# Service: replay specs, store dispatch
# ---------------------------------------------------------------------- #
class TestReplaySpec:
    def test_reliability_spec_hash_unchanged_by_replay_fields(self):
        from repro.service.jobs import CampaignSpec

        spec = CampaignSpec(scheme="citadel", trials=100)
        document = spec.canonical_dict()
        assert "mode" not in document
        assert "replay" not in document
        # Replay-only knobs on a reliability spec are canonicalized away.
        noisy = CampaignSpec(
            scheme="citadel", trials=100, workload="bursty", requests=7,
            replay_cores=9, thermal=True,
        )
        assert noisy.spec_hash() == spec.spec_hash()

    def test_replay_spec_round_trips_through_canonical_json(self):
        from repro.service.jobs import CampaignSpec

        spec = CampaignSpec(
            scheme="citadel", trials=8, mode="replay",
            workload="bursty", requests=64, replay_cores=2, shard_size=2,
        )
        document = spec.canonical_dict()
        assert document["mode"] == "replay"
        assert document["replay"]["workload"] == "bursty"
        again = CampaignSpec.from_dict(
            json.loads(json.dumps(document))
        )
        assert again.spec_hash() == spec.spec_hash()
        assert again == spec

    def test_replay_spec_differs_from_reliability_twin(self):
        from repro.service.jobs import CampaignSpec

        rel = CampaignSpec(scheme="citadel", trials=8, shard_size=2)
        rep = CampaignSpec(scheme="citadel", trials=8, shard_size=2,
                           mode="replay")
        assert rel.spec_hash() != rep.spec_hash()

    def test_invalid_replay_fields_rejected(self):
        from repro.service.jobs import CampaignSpec

        with pytest.raises(SpecError):
            CampaignSpec(mode="nope")
        with pytest.raises(SpecError):
            CampaignSpec(mode="replay", workload="nope")
        with pytest.raises(SpecError):
            CampaignSpec(mode="replay", requests=0)
        with pytest.raises(SpecError):
            CampaignSpec(mode="replay", thermal="yes")

    def test_store_round_trips_replay_results(self, geom, tmp_path):
        from repro.service.jobs import CampaignSpec
        from repro.service.store import ResultStore

        spec = CampaignSpec(
            scheme="citadel", trials=2, mode="replay",
            workload="zipfian", requests=64, replay_cores=2, shard_size=2,
        )
        result = make_runner(geom).run(trials=2)
        store = ResultStore(tmp_path / "store")
        key = store.put(spec, result)
        entry = store.entry(key)
        assert entry["kind"] == "replay"
        loaded = store.get(key)
        assert isinstance(loaded, ReplayResult)
        assert json.dumps(loaded.to_dict()) == json.dumps(result.to_dict())
        # A cold store (fresh memory cache) must dispatch off disk too.
        cold = ResultStore(tmp_path / "store").get(key)
        assert isinstance(cold, ReplayResult)

    def test_reliability_entries_carry_no_kind_tag(self, geom, tmp_path):
        from repro.service.jobs import CampaignSpec
        from repro.service.store import ResultStore
        from repro.reliability.results import ReliabilityResult

        spec = CampaignSpec(scheme="citadel", trials=100)
        sim = citadel_sim(geom, seed=0)
        result = sim.run(trials=100)
        store = ResultStore(tmp_path / "store")
        key = store.put(spec, result)
        assert "kind" not in store.entry(key)
        assert isinstance(store.get(key), ReliabilityResult)

    def test_scheduler_executes_replay_jobs(self, tmp_path):
        import time

        from repro.service.jobs import CampaignSpec
        from repro.service.scheduler import CampaignScheduler
        from repro.service.store import ResultStore

        spec = CampaignSpec(
            scheme="citadel", trials=4, mode="replay",
            workload="zipfian", requests=64, replay_cores=2, shard_size=2,
        )
        store = ResultStore(tmp_path / "store")
        scheduler = CampaignScheduler(store, slots=1).start()
        try:
            job = scheduler.submit(spec)
            deadline = time.monotonic() + 120.0
            while not scheduler.job(job.id).state.terminal:
                assert time.monotonic() < deadline, "replay job timed out"
                time.sleep(0.05)
            assert scheduler.job(job.id).state.value == "done"
            result = scheduler.result(job.id)
            assert isinstance(result, ReplayResult)
            assert result.trials == 4
            # Resubmission is a pure cache hit.
            again = scheduler.submit(spec)
            assert again.cache_hit
        finally:
            scheduler.shutdown()
