"""Same-seed determinism regression tests for the seeded-RNG plumbing.

Every stochastic component accepts an explicit ``seed`` (or a caller-owned
``random.Random``); two runs with the same seed must be bit-identical.
This guards the reproducibility contract enforced statically by reprolint
rule REPRO001 (no unseeded RNG construction outside CLI entry points).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datapath import CitadelDatapath
from repro.core.parity3dp import make_1dp, make_3dp
from repro.faults.injector import FaultInjector
from repro.faults.rates import FailureRates
from repro.reliability.montecarlo import EngineConfig, LifetimeSimulator
from repro.reliability.parallel import ParallelLifetimeRunner
from repro.rng import DEFAULT_SEED, derive_seed, make_rng
from repro.stack.geometry import StackGeometry
from repro.workloads import rate_mode_traces


@pytest.fixture
def geom():
    return StackGeometry()


def run_monte_carlo(geom, seed, trials=300, **cfg):
    sim = LifetimeSimulator(
        geom,
        FailureRates.paper_baseline(tsv_device_fit=100.0),
        make_1dp(geom),
        EngineConfig(**cfg),
        seed=seed,
    )
    return sim.run(trials=trials)


class TestMakeRng:
    def test_default_seed_is_stable(self):
        assert make_rng().random() == make_rng(seed=DEFAULT_SEED).random()

    def test_explicit_seed_wins_over_default(self):
        assert make_rng(seed=7).random() == random.Random(7).random()

    def test_caller_rng_passes_through(self):
        rng = random.Random(3)
        assert make_rng(rng, seed=99) is rng

    def test_derive_seed_is_deterministic_and_label_sensitive(self):
        assert derive_seed(1, "injector") == derive_seed(1, "injector")
        assert derive_seed(1, "injector") != derive_seed(1, "generator")
        assert derive_seed(1, "injector") != derive_seed(2, "injector")


class TestMonteCarloDeterminism:
    def test_same_seed_identical_results(self, geom):
        a = run_monte_carlo(geom, seed=42)
        b = run_monte_carlo(geom, seed=42)
        assert a.failures == b.failures
        assert a.failure_times_hours == b.failure_times_hours
        assert a.stratum_weight == b.stratum_weight

    def test_same_seed_identical_with_mitigations(self, geom):
        cfg = dict(tsv_swap_standby=4, use_dds=True,
                   collect_failure_modes=True)
        a = run_monte_carlo(geom, seed=11, **cfg)
        b = run_monte_carlo(geom, seed=11, **cfg)
        assert a.failures == b.failures
        assert a.failure_times_hours == b.failure_times_hours
        assert a.failure_modes == b.failure_modes

    def test_seed_kwarg_matches_explicit_rng(self, geom):
        rates = FailureRates.paper_baseline()
        via_seed = LifetimeSimulator(
            geom, rates, make_3dp(geom), seed=5
        ).run(trials=100)
        via_rng = LifetimeSimulator(
            geom, rates, make_3dp(geom), rng=random.Random(5)
        ).run(trials=100)
        assert via_seed.failures == via_rng.failures
        assert via_seed.failure_times_hours == via_rng.failure_times_hours

    def test_different_seeds_diverge(self, geom):
        """Not a hard guarantee, but with 300 trials the full failure-time
        vectors colliding across seeds would mean the seed is ignored."""
        a = run_monte_carlo(geom, seed=1)
        b = run_monte_carlo(geom, seed=2)
        assert (a.failures, a.failure_times_hours) != (
            b.failures,
            b.failure_times_hours,
        )


class TestParallelRunnerDeterminism:
    """The sharded runner's worker count must never change the numbers."""

    def run_parallel(self, geom, workers, **cfg):
        runner = ParallelLifetimeRunner(
            geom,
            FailureRates.paper_baseline(tsv_device_fit=100.0),
            make_1dp(geom),
            EngineConfig(**cfg),
            root_seed=42,
            workers=workers,
            shard_size=200,
        )
        return runner.run(trials=800)

    def test_workers_1_vs_4_identical_merged_results(self, geom):
        a = self.run_parallel(geom, workers=1)
        b = self.run_parallel(geom, workers=4)
        assert a == b  # byte-identical aggregate, the PR's core contract
        assert a.failure_times_hours == b.failure_times_hours
        assert a.stratum_weight == b.stratum_weight

    def test_workers_identical_with_mitigations(self, geom):
        cfg = dict(tsv_swap_standby=4, use_dds=True,
                   collect_failure_modes=True, collect_sparing_stats=True)
        a = self.run_parallel(geom, workers=1, **cfg)
        b = self.run_parallel(geom, workers=4, **cfg)
        assert a == b
        assert a.failure_modes == b.failure_modes
        assert a.sparing == b.sparing

    def test_same_root_seed_identical_across_runs(self, geom):
        assert self.run_parallel(geom, workers=2) == self.run_parallel(
            geom, workers=2
        )

    def test_different_root_seeds_diverge(self, geom):
        runner = ParallelLifetimeRunner(
            geom,
            FailureRates.paper_baseline(tsv_device_fit=100.0),
            make_1dp(geom),
            EngineConfig(),
            root_seed=43,
            workers=1,
            shard_size=200,
        )
        assert runner.run(trials=800) != self.run_parallel(geom, workers=1)


class TestIncrementalCorrectionInvisible:
    """``EngineConfig.incremental_correction`` is a pure performance knob:
    results — counts, failure times, metrics snapshot — must be
    byte-identical to the from-scratch reference path."""

    def run_citadel(self, geom, workers, incremental):
        runner = ParallelLifetimeRunner(
            geom,
            FailureRates.paper_baseline(tsv_device_fit=1430.0),
            make_3dp(geom),
            EngineConfig(
                tsv_swap_standby=4,
                use_dds=True,
                collect_metrics=True,
                collect_failure_modes=True,
                incremental_correction=incremental,
            ),
            root_seed=302,
            workers=workers,
            shard_size=150,
        )
        return runner.run(trials=600)

    def test_serial_engine_flag_invisible(self, geom):
        fast = run_monte_carlo(geom, seed=42, collect_metrics=True)
        reference = run_monte_carlo(
            geom, seed=42, collect_metrics=True, incremental_correction=False
        )
        assert fast == reference
        assert fast.metrics == reference.metrics

    def test_citadel_parallel_flag_invisible_any_worker_count(self, geom):
        """Citadel config exercises scrub rebuilds and DDS re-exposure;
        identity must hold at workers=1 and workers=4."""
        reference = self.run_citadel(geom, workers=1, incremental=False)
        for workers in (1, 4):
            fast = self.run_citadel(geom, workers=workers, incremental=True)
            assert fast == reference
            assert fast.metrics == reference.metrics


class TestInjectorDeterminism:
    def test_same_seed_identical_fault_streams(self, geom):
        rates = FailureRates.paper_baseline(tsv_device_fit=200.0)
        a = FaultInjector(geom, rates, seed=17).sample_lifetime(61320.0)[0]
        b = FaultInjector(geom, rates, seed=17).sample_lifetime(61320.0)[0]
        assert len(a) == len(b)
        for fa, fb in zip(a, b):
            assert fa.kind == fb.kind
            assert fa.permanence == fb.permanence
            assert fa.time_hours == fb.time_hours
            assert fa.footprint == fb.footprint


class TestWorkloadDeterminism:
    def test_same_seed_identical_traces(self, geom):
        a = rate_mode_traces("mcf", geom, cores=2, requests_per_core=400, seed=3)
        b = rate_mode_traces("mcf", geom, cores=2, requests_per_core=400, seed=3)
        assert a == b

    def test_cores_get_distinct_streams(self, geom):
        traces = rate_mode_traces(
            "mcf", geom, cores=2, requests_per_core=400, seed=3
        )
        assert traces[0].requests != traces[1].requests


class TestSyntheticWorkloadDeterminism:
    """The replay PR's synthetic profiles (zipfian addresses, bursty
    arrivals) must be pure functions of their seed — for any seed and
    core count hypothesis finds."""

    @settings(max_examples=25, deadline=None)
    @given(
        workload=st.sampled_from(["zipfian", "bursty"]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        cores=st.integers(min_value=1, max_value=3),
    )
    def test_equal_seeds_yield_identical_traces(self, workload, seed, cores):
        geom = StackGeometry()
        a = rate_mode_traces(
            workload, geom, cores=cores, requests_per_core=64, seed=seed
        )
        b = rate_mode_traces(
            workload, geom, cores=cores, requests_per_core=64, seed=seed
        )
        assert a == b

    def test_different_seeds_diverge(self, geom):
        for workload in ("zipfian", "bursty"):
            a = rate_mode_traces(
                workload, geom, cores=1, requests_per_core=256, seed=1
            )
            b = rate_mode_traces(
                workload, geom, cores=1, requests_per_core=256, seed=2
            )
            assert a != b

    def test_synthetic_models_actually_differ_from_stream(self, geom):
        """The zipfian address model and bursty arrival model must not
        silently fall through to the default stream/poisson paths."""
        base = rate_mode_traces(
            "zipfian", geom, cores=1, requests_per_core=256, seed=3
        )[0]
        rows = {r.home.row for r in base.requests}
        assert len(rows) < 256  # hot-set reuse, not a pure stream
        bursty = rate_mode_traces(
            "bursty", geom, cores=1, requests_per_core=256, seed=3
        )[0]
        gaps = [r.gap_cycles for r in bursty.requests]
        assert max(gaps) > 8 * sorted(gaps)[len(gaps) // 2]  # long idles


class TestDatapathDeterminism:
    def test_same_seed_same_rng_stream(self):
        a = CitadelDatapath(seed=23)
        b = CitadelDatapath(seed=23)
        assert [a.rng.random() for _ in range(8)] == [
            b.rng.random() for _ in range(8)
        ]


class TestSerializedByteIdentity:
    """Worker count must not change the *serialized* result either.

    ``a == b`` compares Counters order-insensitively, so it would miss
    the REPRO008 bug this guards: ``failure_modes`` emitted in merge
    (i.e. worker-count-dependent) order.  Comparing the JSON text with
    ``sort_keys=False`` pins the actual bytes a checkpoint or golden
    fixture would contain.
    """

    def run_parallel(self, geom, workers):
        import json

        runner = ParallelLifetimeRunner(
            geom,
            FailureRates.paper_baseline(tsv_device_fit=100.0),
            make_1dp(geom),
            EngineConfig(collect_failure_modes=True,
                         collect_sparing_stats=True),
            root_seed=42,
            workers=workers,
            shard_size=200,
        )
        return json.dumps(runner.run(trials=800).to_dict(), sort_keys=False)

    def test_workers_1_vs_4_serialize_byte_identically(self, geom):
        assert self.run_parallel(geom, 1) == self.run_parallel(geom, 4)
