"""Tests for the performance/power substrate: bank timing, LLC, power
accounting and the system simulator's qualitative behaviors."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.bank import BankState, ChannelState
from repro.perf.llc import LRUCache
from repro.perf.power import EnergyCounters, PowerModel, PowerParams
from repro.perf.system import PerfConfig, SystemSimulator
from repro.perf.timing import DRAMTimings
from repro.stack.address import LineLocation
from repro.stack.geometry import StackGeometry
from repro.stack.striping import StripingPolicy
from repro.workloads.trace import MemoryRequest, Trace


@pytest.fixture
def geom():
    return StackGeometry()


T = DRAMTimings()


class TestDRAMTimings:
    def test_paper_values(self):
        assert (T.tWTR, T.tCAS, T.tRCD, T.tRP, T.tRAS) == (7, 9, 9, 9, 36)

    def test_derived(self):
        assert T.row_miss_penalty == 27
        assert T.row_hit_latency == 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DRAMTimings(tCAS=0)
        with pytest.raises(ConfigurationError):
            DRAMTimings(tRAS=5, tRCD=9)


class TestBankState:
    def test_first_access_is_row_miss(self):
        bank = BankState(T)
        data_at = bank.access(0, row=5, is_write=False)
        assert data_at == T.tRP + T.tRCD + T.tCAS
        assert bank.row_misses == 1 and bank.activations == 1

    def test_second_access_same_row_hits(self):
        bank = BankState(T)
        first = bank.access(0, 5, False)
        second = bank.access(first, 5, False)
        assert bank.row_hits == 1
        assert second - first >= T.tCAS

    def test_row_conflict_pays_tras(self):
        bank = BankState(T)
        bank.access(0, 5, False)
        busy_after_first = bank.busy_until
        assert busy_after_first >= T.tRP + T.tRAS  # row held open for tRAS
        bank.access(0, 6, False)
        assert bank.activations == 2

    def test_write_adds_turnaround(self):
        rd, wr = BankState(T), BankState(T)
        rd.access(0, 5, False)
        wr.access(0, 5, True)
        assert wr.busy_until == rd.busy_until + T.tWTR

    def test_requests_serialize_on_bank(self):
        bank = BankState(T)
        a = bank.access(0, 1, False)
        b = bank.access(0, 2, False)
        assert b > a


class TestChannelBus:
    def test_bus_serializes(self):
        ch = ChannelState(T, num_banks=8)
        first = ch.reserve_bus(10)
        second = ch.reserve_bus(10)
        assert first == 10 + T.tBURST
        assert second == first + T.tBURST
        assert ch.bus_busy_cycles == 2 * T.tBURST


class TestLRUCache:
    def test_hit_after_insert(self):
        c = LRUCache(num_sets=4, ways=2)
        assert not c.access("a")
        assert c.access("a")
        assert c.hit_rate == 0.5

    def test_lru_eviction(self):
        c = LRUCache(num_sets=1, ways=2)
        c.access("a")
        c.access("b")
        c.access("a")   # a is now MRU
        c.access("c")   # evicts b
        assert c.contains("a") and c.contains("c")
        assert not c.contains("b")

    def test_llc_shape(self):
        llc = LRUCache.like_llc()
        assert llc.num_sets * llc.ways * 64 == 8 << 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LRUCache(num_sets=0, ways=2)

    def test_reset_stats(self):
        c = LRUCache(4, 2)
        c.access("a")
        c.reset_stats()
        assert c.hits == 0 and c.misses == 0


class TestPowerModel:
    def test_energy_accumulates(self, geom):
        model = PowerModel(geom, stacks=1)
        counters = EnergyCounters(
            activations=10, read_bytes=640, write_bytes=0, exec_cycles=800
        )
        expected_nj = 10 * 18.0 + 10 * 4.0
        refresh = 25.0 * 9 * (800 / 800e6) * 1e6
        assert model.active_energy_nj(counters) == pytest.approx(
            expected_nj + refresh
        )

    def test_power_requires_positive_time(self, geom):
        with pytest.raises(ConfigurationError):
            PowerModel(geom).active_power_mw(EnergyCounters())

    def test_params_validated(self):
        with pytest.raises(ConfigurationError):
            PowerParams(e_act_nj=-1)

    def test_striped_access_costs_more_activation_energy(self, geom):
        """8 activates per miss vs 1: the root of Figure 5's power gap."""
        model = PowerModel(geom)
        sb = EnergyCounters(activations=100, read_bytes=6400, exec_cycles=1000)
        striped = EnergyCounters(
            activations=800, read_bytes=6400, exec_cycles=1000
        )
        assert model.active_energy_nj(striped) > 3 * model.active_energy_nj(sb)


def _flat_trace(n, gap, write_every=0, mlp=4, stride=1):
    geom = StackGeometry()
    from repro.stack.address import AddressMapper

    mapper = AddressMapper(geom, stacks=2)
    reqs = []
    for i in range(n):
        reqs.append(
            MemoryRequest(
                gap_cycles=gap,
                is_write=bool(write_every and i % write_every == 0),
                home=mapper.to_location((i * stride) % mapper.num_lines),
            )
        )
    return Trace(name="flat", requests=tuple(reqs), mlp=mlp)


class TestSystemSimulator:
    def test_requires_traces(self, geom):
        sim = SystemSimulator(geom, PerfConfig())
        with pytest.raises(ConfigurationError):
            sim.run([])

    def test_exec_time_positive(self, geom):
        result = SystemSimulator(geom, PerfConfig()).run([_flat_trace(100, 10)])
        assert result.exec_cycles > 0
        assert result.demand_reads == 100

    def test_striping_never_faster(self, geom):
        traces = [_flat_trace(500, 2, stride=997) for _ in range(4)]
        base = SystemSimulator(geom, PerfConfig()).run(traces)
        for policy in (StripingPolicy.ACROSS_BANKS, StripingPolicy.ACROSS_CHANNELS):
            striped = SystemSimulator(
                geom, PerfConfig(striping=policy)
            ).run(traces)
            assert striped.exec_cycles >= base.exec_cycles
            assert striped.counters.activations > base.counters.activations

    def test_striped_activations_multiply(self, geom):
        trace = _flat_trace(200, 50, stride=997)  # random-ish, low load
        base = SystemSimulator(geom, PerfConfig()).run([trace])
        striped = SystemSimulator(
            geom, PerfConfig(striping=StripingPolicy.ACROSS_BANKS)
        ).run([trace])
        assert striped.counters.activations == pytest.approx(
            8 * base.counters.activations, rel=0.05
        )

    def test_parity_traffic_only_for_writes(self, geom):
        reads = _flat_trace(200, 10)
        cfg = PerfConfig(parity_protection=True)
        result = SystemSimulator(geom, cfg).run([reads])
        assert result.parity_lookups == 0 and result.rbw_reads == 0

    def test_parity_protection_adds_rbw(self, geom):
        trace = _flat_trace(200, 10, write_every=2)
        result = SystemSimulator(
            geom, PerfConfig(parity_protection=True)
        ).run([trace])
        assert result.rbw_reads == result.demand_writes
        assert result.parity_lookups == result.demand_writes

    def test_no_caching_always_fetches_parity(self, geom):
        trace = _flat_trace(200, 10, write_every=2)
        result = SystemSimulator(
            geom, PerfConfig(parity_protection=True, parity_caching=False)
        ).run([trace])
        assert result.parity_fetches == result.demand_writes
        assert result.parity_hits == 0

    def test_sequential_writes_hit_parity_cache(self, geom):
        """Consecutive lines share a dim-1 parity group: high hit rate."""
        trace = _flat_trace(512, 10, write_every=1)
        result = SystemSimulator(
            geom, PerfConfig(parity_protection=True)
        ).run([trace])
        assert result.parity_hit_rate > 0.8

    def test_row_buffer_hit_rate_tracks_locality(self, geom):
        streaming = _flat_trace(500, 10, stride=1)
        random_ish = _flat_trace(500, 10, stride=524287)
        r_stream = SystemSimulator(geom, PerfConfig()).run([streaming])
        r_random = SystemSimulator(geom, PerfConfig()).run([random_ish])
        assert r_stream.row_buffer_hit_rate > r_random.row_buffer_hit_rate

    def test_mlp_throttles_throughput(self, geom):
        heavy = [_flat_trace(400, 0, stride=997, mlp=1) for _ in range(2)]
        wide = [_flat_trace(400, 0, stride=997, mlp=8) for _ in range(2)]
        slow = SystemSimulator(geom, PerfConfig()).run(heavy)
        fast = SystemSimulator(geom, PerfConfig()).run(wide)
        assert fast.exec_cycles < slow.exec_cycles

    def test_labels(self, geom):
        assert PerfConfig().label() == "Same Bank"
        assert "parity caching" in PerfConfig(parity_protection=True).label()


class TestPerfEdgeCases:
    """Boundary behavior of the LLC and power models (replay-PR
    satellite): empty traces, writeback-only streams, cache reuse."""

    def test_empty_trace_list_rejected(self, geom):
        with pytest.raises(ConfigurationError):
            SystemSimulator(geom, PerfConfig()).run([])

    def test_zero_length_trace_runs_to_zero_cycles(self, geom):
        empty = Trace(name="empty", requests=(), mlp=4)
        result = SystemSimulator(geom, PerfConfig()).run([empty])
        assert result.exec_cycles == 0
        assert result.demand_reads == 0 and result.demand_writes == 0
        assert result.counters.activations == 0

    def test_zero_cycle_power_rejected_but_energy_defined(self, geom):
        empty = Trace(name="empty", requests=(), mlp=4)
        result = SystemSimulator(geom, PerfConfig()).run([empty])
        model = PowerModel(geom)
        assert model.active_energy_nj(result.counters) == 0.0
        with pytest.raises(ConfigurationError):
            model.active_power_mw(result.counters)

    def test_writeback_only_stream(self, geom):
        trace = _flat_trace(64, 4, write_every=1)
        result = SystemSimulator(
            geom, PerfConfig(parity_protection=True, parity_caching=True)
        ).run([trace])
        assert result.demand_reads == 0
        assert result.demand_writes == 64
        assert result.parity_lookups == 64
        assert result.exec_cycles > 0
        # Demand writebacks plus parity-miss fills; never less than the
        # demand bytes themselves.
        assert result.counters.write_bytes >= 64 * 64
        assert PowerModel(geom).active_energy_nj(result.counters) > 0

    def test_lru_reset_then_reuse_matches_fresh_cache(self):
        used = LRUCache(num_sets=4, ways=2)
        for key in range(32):
            used.access(key)
        used.reset()
        fresh = LRUCache(num_sets=4, ways=2)
        keys = [0, 1, 0, 9, 1, 17, 0]
        replayed = [used.access(k) for k in keys]
        reference = [fresh.access(k) for k in keys]
        assert replayed == reference
        assert (used.hits, used.misses, used.evictions) == (
            fresh.hits, fresh.misses, fresh.evictions
        )

    def test_reset_stats_keeps_contents_warm(self):
        c = LRUCache(num_sets=4, ways=2)
        c.access("a")
        c.reset_stats()
        assert c.access("a")  # still resident: only counters were zeroed
        assert c.hits == 1 and c.misses == 0
